package gp

import (
	"math"
	"testing"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

func TestPlaceTwoCellsBetweenPads(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 100, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	// Chain: pad(0, 20) — a — b — pad(100, 20).
	d.Nets = append(d.Nets,
		design.Net{Name: "l", Pins: []design.Pin{
			{CellID: -1, DX: 0, DY: 20}, {CellID: 0, DX: 2, DY: 5},
		}},
		design.Net{Name: "m", Pins: []design.Pin{
			{CellID: 0, DX: 2, DY: 5}, {CellID: 1, DX: 2, DY: 5},
		}},
		design.Net{Name: "r", Pins: []design.Pin{
			{CellID: 1, DX: 2, DY: 5}, {CellID: -1, DX: 100, DY: 20},
		}},
	)
	res, err := Place(d, Options{Iterations: 1}) // pure quadratic solve
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	// Quadratic optimum of a uniform chain: pins at 1/3 and 2/3 between the
	// pads (pin x = center + 0; offsets symmetric).
	pinA := a.GX + 2
	pinB := b.GX + 2
	if math.Abs(pinA-100.0/3) > 1.0 {
		t.Errorf("a pin at %g, want ~%g", pinA, 100.0/3)
	}
	if math.Abs(pinB-200.0/3) > 1.0 {
		t.Errorf("b pin at %g, want ~%g", pinB, 200.0/3)
	}
	if a.GX >= b.GX {
		t.Error("chain order lost")
	}
}

func TestPlaceRequiresNets(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 20, RowHeight: 10, SiteW: 1})
	d.AddCell("a", 4, 10, design.VSS)
	if _, err := Place(d, Options{}); err == nil {
		t.Error("expected error for netless design")
	}
}

func TestPlaceEmptyDesign(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 20, RowHeight: 10, SiteW: 1})
	res, err := Place(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("empty design ran %d iterations", res.Iterations)
	}
}

func TestPlaceSpreadsClusteredCells(t *testing.T) {
	// A realistic netlist from the generator; scrub positions so the placer
	// starts from a cold clump at the core center.
	d, err := gen.Generate(gen.Spec{
		Name: "gp", SingleCells: 300, DoubleCells: 30, Density: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		c.GX, c.GY = d.Core.Center().X, d.Core.Center().Y
		c.X, c.Y = c.GX, c.GY
	}
	res, err := Place(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Overflow > 0.5 {
		t.Errorf("placement barely spread: overflow %.3f", res.Overflow)
	}
	// Positions must be inside the core.
	for _, c := range d.Cells {
		if !d.Core.ContainsRect(c.GlobalBounds()) {
			t.Fatalf("cell %d outside core", c.ID)
		}
	}
}

func TestPlaceOutputIsLegalizable(t *testing.T) {
	// End-to-end substrate test: GP output -> MMSIM legalizer -> legal,
	// with displacement in a sane range.
	d, err := gen.Generate(gen.Spec{
		Name: "gp2", SingleCells: 250, DoubleCells: 25, Density: 0.45, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d, Options{}); err != nil {
		t.Fatal(err)
	}
	stats, err := core.New(core.Options{}).Legalize(d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Unplaced != 0 {
		t.Fatalf("%d unplaced", stats.Unplaced)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
	disp := metrics.MeasureDisplacement(d)
	avg := disp.TotalSites / float64(len(d.Cells))
	if avg > 40 {
		t.Errorf("average displacement %.1f sites — GP output too rough", avg)
	}
}

func TestOverflowMetric(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 8, NumSites: 128, RowHeight: 10, SiteW: 1})
	// All cells stacked on one spot: heavy overflow.
	for i := 0; i < 40; i++ {
		c := d.AddCell("c", 8, 10, design.VSS)
		c.GX, c.GY = 0, 0
	}
	if ov := Overflow(d); ov < 0.5 {
		t.Errorf("stacked design overflow %.3f, want large", ov)
	}
	// Spread them out: one per distinct bin region.
	for i, c := range d.Cells {
		c.GX = float64((i % 8) * 16)
		c.GY = float64((i / 8) * 20)
	}
	if ov := Overflow(d); ov > 0.2 {
		t.Errorf("spread design overflow %.3f, want small", ov)
	}
}
