// Package gp implements a small analytic global placer in the SimPL
// tradition: quadratic wirelength minimization (clique net model, solved
// with conjugate gradients) alternating with lookahead legalization that
// provides spreading anchors of growing weight. It exists as the substrate
// that *produces* the inputs the paper's legalizer consumes — a realistic,
// overlapping, locally-ordered global placement driven by an actual
// netlist — complementing the statistical generator in internal/gen.
//
// The placer is deliberately minimal (no density smoothing, no
// timing/congestion), but it exhibits the properties the legalization
// paper's premise relies on: cells end up near their final regions with
// meaningful relative ordering and moderate overlap.
package gp

import (
	"fmt"
	"math"

	"mclg/internal/design"
	"mclg/internal/sparse"
	"mclg/internal/tetris"
)

// Options configures the placer.
type Options struct {
	// Iterations is the number of solve/spread rounds; 0 means 16.
	Iterations int
	// AnchorBase is the pseudo-net weight of the first spreading round
	// relative to the average net weight; 0 means 0.02.
	AnchorBase float64
	// AnchorGrowth multiplies the anchor weight every round; 0 means 2.
	AnchorGrowth float64
	// CGTol is the relative CG residual; 0 means 1e-7.
	CGTol float64
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 16
	}
	if o.AnchorBase == 0 {
		o.AnchorBase = 0.02
	}
	if o.AnchorGrowth == 0 {
		o.AnchorGrowth = 2
	}
	if o.CGTol == 0 {
		o.CGTol = 1e-7
	}
	return o
}

// Result reports the run.
type Result struct {
	Iterations int
	CGIters    int     // total CG iterations across all solves and both axes
	Overflow   float64 // final bin-density overflow fraction (0 = fully spread)
}

// Place computes a global placement for the design's movable cells from its
// netlist, writing GX/GY (and X/Y). Fixed cells and fixed pins act as
// anchors. Returns an error if the design has no nets to drive the
// placement.
func Place(d *design.Design, opts Options) (*Result, error) {
	o := opts.withDefaults()
	idx, movable := buildIndex(d)
	n := len(movable)
	if n == 0 {
		return &Result{}, nil
	}
	sys, err := buildSystem(d, idx, movable)
	if err != nil {
		return nil, err
	}

	res := &Result{}
	// Initial positions: cell centers (or the core center for unplaced
	// designs where everything sits at the origin).
	x := make([]float64, n)
	y := make([]float64, n)
	for i, c := range movable {
		x[i] = c.GX + c.W/2
		y[i] = c.GY + c.H/2
	}

	anchorW := o.AnchorBase * sys.avgWeight
	anchorX := make([]float64, n)
	anchorY := make([]float64, n)
	haveAnchor := false

	for it := 0; it < o.Iterations; it++ {
		res.Iterations = it + 1
		aw := 0.0
		if haveAnchor {
			aw = anchorW
		}
		cg1, err := sys.solve(x, sys.bx, anchorX, aw, o.CGTol)
		if err != nil {
			return nil, fmt.Errorf("gp: x solve: %w", err)
		}
		cg2, err := sys.solve(y, sys.by, anchorY, aw, o.CGTol)
		if err != nil {
			return nil, fmt.Errorf("gp: y solve: %w", err)
		}
		res.CGIters += cg1 + cg2
		writeBack(d, movable, x, y)

		if it == o.Iterations-1 {
			break
		}
		// Lookahead legalization → spreading anchors.
		if err := lookahead(d, movable, anchorX, anchorY); err != nil {
			return nil, fmt.Errorf("gp: lookahead: %w", err)
		}
		haveAnchor = true
		anchorW *= o.AnchorGrowth
	}

	// Final blend: pull each cell partway toward its lookahead anchor so
	// the output overlaps moderately instead of heavily — the regime
	// legalization expects from a converged placer.
	if haveAnchor {
		for i := range x {
			x[i] = 0.5*x[i] + 0.5*anchorX[i]
			y[i] = 0.5*y[i] + 0.5*anchorY[i]
		}
		writeBack(d, movable, x, y)
	}
	res.Overflow = Overflow(d)
	return res, nil
}

// buildIndex maps cell IDs to contiguous movable indices.
func buildIndex(d *design.Design) (map[int]int, []*design.Cell) {
	idx := make(map[int]int)
	var movable []*design.Cell
	for _, c := range d.Cells {
		if !c.Fixed {
			idx[c.ID] = len(movable)
			movable = append(movable, c)
		}
	}
	return idx, movable
}

// system holds the quadratic model: L x = b (per axis) plus diagonal
// regularization; anchors are added per solve.
type system struct {
	n         int
	lap       *sparse.CSR
	diagReg   []float64 // regularization + fixed-anchor diagonal
	bx, by    []float64
	avgWeight float64
	scratch   []float64
}

func buildSystem(d *design.Design, idx map[int]int, movable []*design.Cell) (*system, error) {
	n := len(movable)
	s := &system{
		n:       n,
		diagReg: make([]float64, n),
		bx:      make([]float64, n),
		by:      make([]float64, n),
		scratch: make([]float64, n),
	}
	b := sparse.NewBuilder(n, n)
	totalW, terms := 0.0, 0
	addPair := func(i, j int, w, oxi, oyi, oxj, oyj float64) {
		// w((xi + oxi) − (xj + oxj))²: Laplacian entries plus rhs shifts.
		b.Add(i, i, w)
		b.Add(j, j, w)
		b.Add(i, j, -w)
		b.Add(j, i, -w)
		s.bx[i] += w * (oxj - oxi)
		s.bx[j] += w * (oxi - oxj)
		s.by[i] += w * (oyj - oyi)
		s.by[j] += w * (oyi - oyj)
		totalW += w
		terms++
	}
	addAnchor := func(i int, w, px, py, oxi, oyi float64) {
		s.diagReg[i] += w
		s.bx[i] += w * (px - oxi)
		s.by[i] += w * (py - oyi)
		totalW += w
		terms++
	}

	type pinRef struct {
		mi     int // movable index or -1
		px, py float64
		ox, oy float64 // offset from cell center (movable pins)
	}
	connected := 0
	for ni := range d.Nets {
		net := &d.Nets[ni]
		if len(net.Pins) < 2 {
			continue
		}
		k := len(net.Pins)
		w := 1.0 / float64(k-1)
		refs := make([]pinRef, 0, k)
		for _, p := range net.Pins {
			if p.CellID < 0 {
				refs = append(refs, pinRef{mi: -1, px: p.DX, py: p.DY})
				continue
			}
			c := d.Cells[p.CellID]
			if c.Fixed {
				refs = append(refs, pinRef{mi: -1, px: c.X + p.DX, py: c.Y + p.DY})
				continue
			}
			mi := idx[p.CellID]
			refs = append(refs, pinRef{mi: mi, ox: p.DX - c.W/2, oy: p.DY - c.H/2})
		}
		for a := 0; a < len(refs); a++ {
			for bb := a + 1; bb < len(refs); bb++ {
				ra, rb := refs[a], refs[bb]
				switch {
				case ra.mi >= 0 && rb.mi >= 0:
					if ra.mi != rb.mi {
						addPair(ra.mi, rb.mi, w, ra.ox, ra.oy, rb.ox, rb.oy)
						connected++
					}
				case ra.mi >= 0:
					addAnchor(ra.mi, w, rb.px, rb.py, ra.ox, ra.oy)
					connected++
				case rb.mi >= 0:
					addAnchor(rb.mi, w, ra.px, ra.py, rb.ox, rb.oy)
					connected++
				}
			}
		}
	}
	if connected == 0 {
		return nil, fmt.Errorf("gp: netlist connects no movable cells")
	}
	s.avgWeight = totalW / float64(terms)
	// Weak regularization toward the core center removes the translation
	// null space and parks netless cells sensibly.
	cx, cy := d.Core.Center().X, d.Core.Center().Y
	reg := 1e-4 * s.avgWeight
	for i := 0; i < n; i++ {
		s.diagReg[i] += reg
		s.bx[i] += reg * cx
		s.by[i] += reg * cy
	}
	s.lap = b.Build()
	return s, nil
}

// solve runs preconditioned CG on (L + diagReg + aw·I) v = b + aw·anchor.
func (s *system) solve(v, b, anchor []float64, aw, tol float64) (int, error) {
	rhs := make([]float64, s.n)
	for i := range rhs {
		rhs[i] = b[i] + aw*anchor[i]
	}
	diag := make([]float64, s.n)
	for i := range diag {
		diag[i] = s.lap.At(i, i) + s.diagReg[i] + aw
	}
	apply := func(dst, src []float64) {
		s.lap.MulVec(dst, src)
		for i := range dst {
			dst[i] += (s.diagReg[i] + aw) * src[i]
		}
	}
	return sparse.CG(apply, rhs, v, sparse.CGOptions{
		Tol: tol, MaxIter: 50 * (s.n + 10),
		Precond: func(dst, src []float64) {
			for i := range dst {
				dst[i] = src[i] / diag[i]
			}
		},
	})
}

// writeBack converts centers to corner positions, clamped into the core.
func writeBack(d *design.Design, movable []*design.Cell, x, y []float64) {
	for i, c := range movable {
		c.GX = clamp(x[i]-c.W/2, d.Core.Lo.X, d.Core.Hi.X-c.W)
		c.GY = clamp(y[i]-c.H/2, d.Core.Lo.Y, d.Core.Hi.Y-c.H)
		c.X, c.Y = c.GX, c.GY
	}
}

// lookahead computes roughly-legal anchor positions by snapping a clone of
// the current placement with the Tetris allocator.
func lookahead(d *design.Design, movable []*design.Cell, anchorX, anchorY []float64) error {
	clone := d.Clone()
	// Row-align every movable clone cell first (Allocate requires it).
	for _, c := range clone.Cells {
		if c.Fixed {
			continue
		}
		row := clone.NearestCorrectRow(c, c.GY)
		if row < 0 {
			return fmt.Errorf("cell %d has no row", c.ID)
		}
		c.Y = clone.RowY(row)
		c.X = c.GX
	}
	if _, err := tetris.Allocate(clone); err != nil {
		return err
	}
	for i, c := range movable {
		lc := clone.Cells[c.ID]
		anchorX[i] = lc.X + c.W/2
		anchorY[i] = lc.Y + c.H/2
	}
	return nil
}

// Overflow measures density overflow: the fraction of total cell area that
// exceeds per-bin capacity on a coarse grid (0 = perfectly spread).
func Overflow(d *design.Design) float64 {
	const binRows = 2
	binW := 16 * d.SiteW
	nx := int(math.Ceil(d.Core.W() / binW))
	ny := int(math.Ceil(d.Core.H() / (binRows * d.RowHeight)))
	if nx == 0 || ny == 0 {
		return 0
	}
	area := make([]float64, nx*ny)
	total := 0.0
	for _, c := range d.Cells {
		total += c.Area()
		// Spread the cell's area over the bins it covers.
		x0, x1 := c.GX, c.GX+c.W
		y0, y1 := c.GY, c.GY+c.H
		for bx := int(x0 / binW); bx <= int(x1/binW) && bx < nx; bx++ {
			if bx < 0 {
				continue
			}
			for by := int(y0 / (binRows * d.RowHeight)); by <= int(y1/(binRows*d.RowHeight)) && by < ny; by++ {
				if by < 0 {
					continue
				}
				ox := overlap1(x0, x1, float64(bx)*binW, float64(bx+1)*binW)
				oy := overlap1(y0, y1, float64(by)*binRows*d.RowHeight, float64(by+1)*binRows*d.RowHeight)
				area[bx*ny+by] += ox * oy
			}
		}
	}
	if total == 0 {
		return 0
	}
	binCap := binW * binRows * d.RowHeight
	over := 0.0
	for _, a := range area {
		if a > binCap {
			over += a - binCap
		}
	}
	return over / total
}

func overlap1(a0, a1, b0, b1 float64) float64 {
	lo, hi := math.Max(a0, b0), math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func clamp(x, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	return math.Min(math.Max(x, lo), hi)
}
