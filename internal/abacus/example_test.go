package abacus_test

import (
	"fmt"

	"mclg/internal/abacus"
)

// ExamplePlaceRow shows the cluster-collapse dynamic program on three cells
// where the middle pair overlaps: the optimum splits the movement.
func ExamplePlaceRow() {
	entries := []abacus.Entry{
		{Target: 0, Width: 2, Weight: 1},
		{Target: 5, Width: 2, Weight: 1},
		{Target: 5, Width: 2, Weight: 1}, // wants the same spot as its neighbor
	}
	x := abacus.PlaceRow(entries, 0, 100)
	fmt.Printf("%.1f %.1f %.1f\n", x[0], x[1], x[2])
	// Output:
	// 0.0 4.0 6.0
}
