package abacus

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/design"
)

func TestPlaceRowNoOverlapKeepsTargets(t *testing.T) {
	entries := []Entry{
		{Target: 0, Width: 2, Weight: 1},
		{Target: 10, Width: 2, Weight: 1},
		{Target: 20, Width: 2, Weight: 1},
	}
	x := PlaceRow(entries, 0, 100)
	for i, e := range entries {
		if x[i] != e.Target {
			t.Errorf("x[%d] = %g, want %g (no overlap, no move)", i, x[i], e.Target)
		}
	}
}

func TestPlaceRowTwoOverlappingCells(t *testing.T) {
	// Both want 5, width 2: optimum 4 and 6.
	entries := []Entry{
		{Target: 5, Width: 2, Weight: 1},
		{Target: 5, Width: 2, Weight: 1},
	}
	x := PlaceRow(entries, 0, 100)
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-6) > 1e-12 {
		t.Errorf("x = %v, want [4 6]", x)
	}
}

func TestPlaceRowWeighted(t *testing.T) {
	// Heavy cell barely moves: weights 9 and 1, both want 10, width 2.
	// Cluster optimum: minimize 9(x-10)² + (x+2-10)² -> x = (9*10+1*8)/10 = 9.8.
	entries := []Entry{
		{Target: 10, Width: 2, Weight: 9},
		{Target: 10, Width: 2, Weight: 1},
	}
	x := PlaceRow(entries, 0, 100)
	if math.Abs(x[0]-9.8) > 1e-12 || math.Abs(x[1]-11.8) > 1e-12 {
		t.Errorf("x = %v, want [9.8 11.8]", x)
	}
}

func TestPlaceRowLeftBoundary(t *testing.T) {
	entries := []Entry{
		{Target: -5, Width: 3, Weight: 1},
		{Target: -4, Width: 3, Weight: 1},
	}
	x := PlaceRow(entries, 0, 100)
	if x[0] != 0 || x[1] != 3 {
		t.Errorf("x = %v, want [0 3]", x)
	}
}

func TestPlaceRowRightBoundary(t *testing.T) {
	entries := []Entry{
		{Target: 95, Width: 4, Weight: 1},
		{Target: 97, Width: 4, Weight: 1},
	}
	x := PlaceRow(entries, 0, 100)
	if x[1]+4 > 100+1e-12 {
		t.Errorf("right boundary violated: %v", x)
	}
	if x[0]+4 > x[1]+1e-12 {
		t.Errorf("overlap after clamping: %v", x)
	}
	// Relaxed right boundary lets them sit at their targets' optimum.
	xr := PlaceRow(entries, 0, math.Inf(1))
	if math.Abs(xr[0]-94) > 1e-12 || math.Abs(xr[1]-98) > 1e-12 {
		t.Errorf("relaxed x = %v, want [94 98]", xr)
	}
}

func TestPlaceRowEmpty(t *testing.T) {
	if x := PlaceRow(nil, 0, 10); x != nil {
		t.Errorf("empty PlaceRow = %v, want nil", x)
	}
}

// chainExact solves the same problem by reduction to isotonic regression
// (pool adjacent violators), an independent exact method.
func chainExact(targets, widths, weights []float64, xmin float64) []float64 {
	n := len(targets)
	prefix := make([]float64, n)
	for i := 1; i < n; i++ {
		prefix[i] = prefix[i-1] + widths[i-1]
	}
	type block struct {
		sum, wt float64
		count   int
	}
	var blocks []block
	for i := 0; i < n; i++ {
		blocks = append(blocks, block{weights[i] * (targets[i] - prefix[i]), weights[i], 1})
		for len(blocks) >= 2 {
			a, b := blocks[len(blocks)-2], blocks[len(blocks)-1]
			if a.sum/a.wt <= b.sum/b.wt {
				break
			}
			blocks = blocks[:len(blocks)-2]
			blocks = append(blocks, block{a.sum + b.sum, a.wt + b.wt, a.count + b.count})
		}
	}
	x := make([]float64, 0, n)
	for _, bl := range blocks {
		v := bl.sum / bl.wt
		if v < xmin {
			v = xmin
		}
		for k := 0; k < bl.count; k++ {
			x = append(x, v+prefix[len(x)])
		}
	}
	return x
}

// Property: PlaceRow matches the independent PAVA solution on random rows
// with a relaxed right boundary.
func TestPlaceRowMatchesPAVA(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		entries := make([]Entry, n)
		targets := make([]float64, n)
		widths := make([]float64, n)
		weights := make([]float64, n)
		// Nondecreasing targets (the ordering Abacus assumes).
		cur := 0.0
		for i := 0; i < n; i++ {
			cur += rng.Float64() * 4
			targets[i] = cur
			widths[i] = 0.5 + rng.Float64()*3
			weights[i] = 0.5 + rng.Float64()*4
			entries[i] = Entry{Target: targets[i], Width: widths[i], Weight: weights[i]}
		}
		got := PlaceRow(entries, 0, math.Inf(1))
		want := chainExact(targets, widths, weights, 0)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d: x[%d] = %.12g, PAVA %.12g", trial, i, got[i], want[i])
			}
		}
	}
}

// Property: the PlaceRow result always satisfies the constraints.
func TestPlaceRowAlwaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(15)
		entries := make([]Entry, n)
		total := 0.0
		for i := range entries {
			entries[i] = Entry{
				Target: rng.Float64()*50 - 10,
				Width:  0.5 + rng.Float64()*2,
				Weight: 0.5 + rng.Float64(),
			}
			total += entries[i].Width
		}
		// Unsorted targets are allowed — Abacus preserves input order.
		xmax := total + rng.Float64()*20
		x := PlaceRow(entries, 0, xmax)
		if x[0] < -1e-9 {
			t.Fatalf("trial %d: left boundary violated: %g", trial, x[0])
		}
		for i := 0; i+1 < n; i++ {
			if x[i]+entries[i].Width > x[i+1]+1e-9 {
				t.Fatalf("trial %d: overlap at %d: %v", trial, i, x)
			}
		}
		if x[n-1]+entries[n-1].Width > xmax+1e-9 {
			t.Fatalf("trial %d: right boundary violated", trial)
		}
	}
}

func singleRowDesign(rng *rand.Rand, rows, sites, cells int) *design.Design {
	d := design.NewDesign(design.Config{NumRows: rows, NumSites: sites, RowHeight: 10, SiteW: 1})
	for i := 0; i < cells; i++ {
		w := float64(2 + rng.Intn(6))
		c := d.AddCell("c", w, 10, design.VSS)
		c.GX = rng.Float64() * (float64(sites) - w)
		c.GY = rng.Float64() * float64(rows-1) * 10
		c.X, c.Y = c.GX, c.GY
	}
	return d
}

func TestLegalizeSingleHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	d := singleRowDesign(rng, 6, 100, 40)
	if err := Legalize(d, Options{}); err != nil {
		t.Fatal(err)
	}
	// Every cell on a row, inside the core, no overlaps within rows.
	byRow := map[int][]*design.Cell{}
	for _, c := range d.Cells {
		r := d.RowAt(c.Y + 1)
		if r < 0 {
			t.Fatalf("cell %d off rows: y=%g", c.ID, c.Y)
		}
		if c.X < d.Core.Lo.X-1e-9 || c.X+c.W > d.Core.Hi.X+1e-9 {
			t.Errorf("cell %d outside core: x=%g", c.ID, c.X)
		}
		byRow[r] = append(byRow[r], c)
	}
	for r, cells := range byRow {
		for i := range cells {
			for j := i + 1; j < len(cells); j++ {
				a, b := cells[i], cells[j]
				if a.X < b.X+b.W && b.X < a.X+a.W {
					t.Errorf("row %d: cells %d and %d overlap", r, a.ID, b.ID)
				}
			}
		}
	}
}

func TestLegalizeRejectsMultiRow(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 50, RowHeight: 10, SiteW: 1})
	d.AddCell("d", 4, 20, design.VSS)
	if err := Legalize(d, Options{}); err == nil {
		t.Error("expected ErrMultiRow")
	}
}

func TestPlaceRowsAssignedOptimalPerRow(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	d := singleRowDesign(rng, 4, 80, 25)
	// Assign to nearest rows.
	for _, c := range d.Cells {
		r := d.RowAt(math.Min(math.Max(c.GY, 0), float64(len(d.Rows)-1)*10) + 5)
		c.Y = d.RowY(r)
	}
	if err := PlaceRowsAssigned(d, true); err != nil {
		t.Fatal(err)
	}
	// Check per-row optimality against PAVA.
	byRow := map[int][]*design.Cell{}
	for _, c := range d.Cells {
		r := d.RowAt(c.Y + 1)
		byRow[r] = append(byRow[r], c)
	}
	for r, cells := range byRow {
		// Sort by GX (the PlaceRowsAssigned order).
		for i := 1; i < len(cells); i++ {
			for j := i; j > 0; j-- {
				a, b := cells[j-1], cells[j]
				if a.GX > b.GX || (a.GX == b.GX && a.ID > b.ID) {
					cells[j-1], cells[j] = b, a
				} else {
					break
				}
			}
		}
		targets := make([]float64, len(cells))
		widths := make([]float64, len(cells))
		weights := make([]float64, len(cells))
		for i, c := range cells {
			targets[i], widths[i], weights[i] = c.GX, c.W, 1
		}
		want := chainExact(targets, widths, weights, 0)
		for i, c := range cells {
			if math.Abs(c.X-want[i]) > 1e-9 {
				t.Errorf("row %d cell %d: x = %g, PAVA %g", r, c.ID, c.X, want[i])
			}
		}
	}
}
