// Package abacus implements the Abacus legalizer of Spindler, Schlichtmann
// and Johannes (ISPD 2008) for single-row-height standard cells: the
// PlaceRow cluster-collapse dynamic program that optimally positions an
// ordered row of cells minimizing Σ e_i (x_i − x'_i)², and the full
// legalizer that inserts cells into their best row by trial PlaceRow cost.
//
// The paper under reproduction uses PlaceRow two ways: Section 5.3 swaps it
// in for the MMSIM on single-height designs to validate MMSIM optimality
// (both are optimal for fixed ordering, so displacements must agree), and
// the ASP-DAC'17 baseline builds on Abacus-style insertion.
package abacus

import (
	"math"
	"sort"

	"mclg/internal/design"
)

// Entry is one cell in a row for PlaceRow: target position, width, weight.
type Entry struct {
	Target float64 // desired x (global placement)
	Width  float64
	Weight float64 // e_i; typically 1 or the cell area
}

// PlaceRow optimally places the ordered entries in [xmin, xmax), minimizing
// Σ w_i (x_i − t_i)² subject to x_{i+1} ≥ x_i + width_i, x_0 ≥ xmin and,
// if bounded, x_last + width_last ≤ xmax. Set xmax to +Inf to relax the
// right boundary (the relaxation the MMSIM uses).
//
// Returns the optimal x positions. The input order is preserved — Abacus
// never reorders cells within a row.
func PlaceRow(entries []Entry, xmin, xmax float64) []float64 {
	n := len(entries)
	if n == 0 {
		return nil
	}
	// Cluster stack: each cluster is a maximal run of abutting cells.
	type cluster struct {
		e, q, w float64 // weight sum, weighted target sum, total width
		first   int     // index of first entry in cluster
	}
	clusters := make([]cluster, 0, n)

	clamp := func(x, w float64) float64 {
		if x < xmin {
			x = xmin
		}
		if hi := xmax - w; x > hi {
			x = hi
		}
		return x
	}

	for i, en := range entries {
		// New cluster containing just entry i.
		c := cluster{e: en.Weight, q: en.Weight * en.Target, w: en.Width, first: i}
		// Collapse: merge with predecessor while they overlap.
		for len(clusters) > 0 {
			prev := clusters[len(clusters)-1]
			prevX := clamp(prev.q/prev.e, prev.w)
			curX := clamp(c.q/c.e, c.w)
			if prevX+prev.w <= curX {
				break
			}
			// Merge c into prev: the optimal position of the merged cluster
			// is the weighted mean of shifted targets.
			prev.q += c.q - c.e*prev.w
			prev.e += c.e
			prev.w += c.w
			clusters = clusters[:len(clusters)-1]
			c = prev
		}
		clusters = append(clusters, c)
	}

	x := make([]float64, n)
	for k, c := range clusters {
		end := n
		if k+1 < len(clusters) {
			end = clusters[k+1].first
		}
		pos := clamp(c.q/c.e, c.w)
		for i := c.first; i < end; i++ {
			x[i] = pos
			pos += entries[i].Width
		}
	}
	return x
}

// RowCost returns the optimal Σ w_i (x_i − t_i)² for the entries, reusing
// PlaceRow.
func RowCost(entries []Entry, xmin, xmax float64) float64 {
	x := PlaceRow(entries, xmin, xmax)
	s := 0.0
	for i, en := range entries {
		d := x[i] - en.Target
		s += en.Weight * d * d
	}
	return s
}

// Options configures the full Abacus legalizer.
type Options struct {
	// RowSearchRange bounds how many rows above/below the nearest row are
	// tried for each cell; 0 means all rows.
	RowSearchRange int
	// RelaxRight relaxes the right boundary during PlaceRow (cells are
	// clamped afterwards); used by the §5.3 optimality experiment.
	RelaxRight bool
	// WeightByArea uses the cell area as the quadratic weight e_i
	// (the original Abacus recommendation); false uses 1.
	WeightByArea bool
}

// rowState carries the cells committed to one row during legalization.
type rowState struct {
	cells   []*design.Cell
	entries []Entry
}

// Legalize runs the full Abacus on a single-row-height design: cells sorted
// by global x, each inserted into the row minimizing the trial PlaceRow
// cost plus vertical displacement. The design's cell positions are updated
// (x real-valued; callers snap to sites afterwards, e.g. via tetris).
//
// Returns an error when the design contains multi-row cells — classic
// Abacus does not support them (the point of the paper).
func Legalize(d *design.Design, opts Options) error {
	for _, c := range d.Cells {
		if !c.Fixed && c.RowSpan != 1 {
			return ErrMultiRow{CellID: c.ID}
		}
	}
	cells := make([]*design.Cell, 0, len(d.Cells))
	for _, c := range d.Cells {
		if !c.Fixed {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].GX != cells[j].GX {
			return cells[i].GX < cells[j].GX
		}
		return cells[i].ID < cells[j].ID
	})

	rows := make([]rowState, len(d.Rows))
	xmax := func(r int) float64 {
		if opts.RelaxRight {
			return math.Inf(1)
		}
		return d.Rows[r].XMax()
	}

	for _, c := range cells {
		weight := 1.0
		if opts.WeightByArea {
			weight = c.Area()
		}
		en := Entry{Target: c.GX, Width: c.W, Weight: weight}

		nearest := d.RowAt(c.GY + d.RowHeight/2)
		if nearest < 0 {
			if c.GY < d.Core.Lo.Y {
				nearest = 0
			} else {
				nearest = len(d.Rows) - 1
			}
		}
		bestRow, bestCost := -1, math.Inf(1)
		lo, hi := 0, len(d.Rows)-1
		if opts.RowSearchRange > 0 {
			lo = nearest - opts.RowSearchRange
			hi = nearest + opts.RowSearchRange
		}
		for r := lo; r <= hi; r++ {
			if r < 0 || r >= len(d.Rows) {
				continue
			}
			rs := &rows[r]
			// Capacity check under a hard right boundary.
			if !opts.RelaxRight {
				used := 0.0
				for _, e := range rs.entries {
					used += e.Width
				}
				if used+c.W > d.Rows[r].Span().Len() {
					continue
				}
			}
			dy := d.RowY(r) - c.GY
			vCost := weight * dy * dy
			if vCost >= bestCost {
				continue
			}
			trial := append(append([]Entry(nil), rs.entries...), en)
			hCost := RowCost(trial, d.Rows[r].OriginX, xmax(r))
			if cost := hCost + vCost; cost < bestCost {
				bestCost, bestRow = cost, r
			}
		}
		if bestRow < 0 {
			return ErrNoRoom{CellID: c.ID}
		}
		rs := &rows[bestRow]
		rs.cells = append(rs.cells, c)
		rs.entries = append(rs.entries, en)
		c.Y = d.RowY(bestRow)
	}

	// Final PlaceRow per row writes the x positions.
	for r := range rows {
		rs := &rows[r]
		if len(rs.entries) == 0 {
			continue
		}
		x := PlaceRow(rs.entries, d.Rows[r].OriginX, xmax(r))
		for i, c := range rs.cells {
			c.X = x[i]
		}
	}
	return nil
}

// ErrMultiRow reports a multi-row cell passed to the single-height Abacus.
type ErrMultiRow struct{ CellID int }

func (e ErrMultiRow) Error() string {
	return "abacus: cell has multi-row height; classic Abacus only handles single-row cells"
}

// ErrNoRoom reports that no row could accommodate a cell.
type ErrNoRoom struct{ CellID int }

func (e ErrNoRoom) Error() string {
	return "abacus: no row can accommodate cell"
}

// PlaceRowsAssigned runs PlaceRow independently on every row of a design
// whose cells are already assigned to rows (c.Y on row boundaries), exactly
// the "replace the MMSIM solver with PlaceRow" experiment of Section 5.3.
// Ordering within each row follows global x (ties by ID), the same order
// the MMSIM problem construction uses.
func PlaceRowsAssigned(d *design.Design, relaxRight bool) error {
	type rowCells struct{ cells []*design.Cell }
	rows := make([]rowCells, len(d.Rows))
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		if c.RowSpan != 1 {
			return ErrMultiRow{CellID: c.ID}
		}
		r := d.RowAt(c.Y + d.RowHeight/2)
		if r < 0 {
			return ErrNoRoom{CellID: c.ID}
		}
		rows[r].cells = append(rows[r].cells, c)
	}
	for r := range rows {
		cells := rows[r].cells
		if len(cells) == 0 {
			continue
		}
		sort.Slice(cells, func(i, j int) bool {
			if cells[i].GX != cells[j].GX {
				return cells[i].GX < cells[j].GX
			}
			return cells[i].ID < cells[j].ID
		})
		entries := make([]Entry, len(cells))
		for i, c := range cells {
			entries[i] = Entry{Target: c.GX, Width: c.W, Weight: 1}
		}
		xmax := d.Rows[r].XMax()
		if relaxRight {
			xmax = math.Inf(1)
		}
		x := PlaceRow(entries, d.Rows[r].OriginX, xmax)
		for i, c := range cells {
			c.X = x[i]
		}
	}
	return nil
}
