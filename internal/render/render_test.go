package render

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"mclg/internal/design"
)

func testDesign() *design.Design {
	d := design.NewDesign(design.Config{NumRows: 4, NumSites: 50, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 5, 10, design.VSS)
	a.GX, a.GY = 3, 0
	a.X, a.Y = 5, 0
	b := d.AddCell("b", 5, 20, design.VSS)
	b.GX, b.GY = 10, 0
	b.X, b.Y = 10, 0
	f := d.AddCell("f", 5, 10, design.VSS)
	f.Fixed = true
	f.X, f.Y = 30, 20
	return d
}

func TestSVGBasicStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(testDesign(), &buf, Options{Displacement: true}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.HasSuffix(strings.TrimSpace(s), "</svg>") {
		t.Error("not a well-formed SVG wrapper")
	}
	// One rect per cell plus the background.
	if got := strings.Count(s, "<rect"); got != 4 {
		t.Errorf("rect count = %d, want 4", got)
	}
	// Colors: single, multi, fixed.
	for _, col := range []string{"#7ca6d8", "#3a6db0", "#888888"} {
		if !strings.Contains(s, col) {
			t.Errorf("missing fill %s", col)
		}
	}
	// One displacement line (only cell a moved) in red.
	if got := strings.Count(s, "#d03030"); got != 1 {
		t.Errorf("displacement lines = %d, want 1", got)
	}
}

func TestSVGNoDisplacementOption(t *testing.T) {
	var buf bytes.Buffer
	if err := SVG(testDesign(), &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#d03030") {
		t.Error("displacement drawn despite option off")
	}
}

func TestSVGWindowClipsCells(t *testing.T) {
	var buf bytes.Buffer
	opts := Options{}
	opts.Window.X0, opts.Window.Y0, opts.Window.X1, opts.Window.Y1 = 0, 0, 8, 10
	if err := SVG(testDesign(), &buf, opts); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Only cell a intersects the window: background + 1 cell.
	if got := strings.Count(s, "<rect"); got != 2 {
		t.Errorf("rect count = %d, want 2", got)
	}
}

func TestSVGNets(t *testing.T) {
	d := testDesign()
	d.Nets = append(d.Nets, design.Net{Name: "n", Pins: []design.Pin{
		{CellID: 0, DX: 1, DY: 1},
		{CellID: 1, DX: 1, DY: 1},
		{CellID: -1, DX: 40, DY: 5},
	}})
	var buf bytes.Buffer
	if err := SVG(d, &buf, Options{Nets: true}); err != nil {
		t.Fatal(err)
	}
	// A 3-pin star has 3 segments in amber.
	if got := strings.Count(buf.String(), "#d09030"); got != 3 {
		t.Errorf("net segments = %d, want 3", got)
	}
	// Without the option, none.
	buf.Reset()
	if err := SVG(d, &buf, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#d09030") {
		t.Error("nets drawn despite option off")
	}
}

func TestSVGFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.svg")
	if err := SVGFile(testDesign(), path, Options{WidthPx: 200}); err != nil {
		t.Fatal(err)
	}
	// Re-render to buffer and compare non-emptiness.
	var buf bytes.Buffer
	if err := SVG(testDesign(), &buf, Options{WidthPx: 200}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty SVG")
	}
}
