// Package render draws a placement as an SVG in the style of the paper's
// Figure 5: cells in blue (double-height cells shaded darker), displacement
// vectors from the global position in red, rows as light guides.
package render

import (
	"fmt"
	"io"
	"os"

	"mclg/internal/design"
)

// Options controls the rendering.
type Options struct {
	// WidthPx is the output width in pixels; height follows the core's
	// aspect ratio. 0 means 1000.
	WidthPx float64
	// Displacement draws red lines from each cell's global position to its
	// current position.
	Displacement bool
	// Window restricts rendering to a sub-rectangle of the core in design
	// units (zero value = whole core) — used for partial layouts like
	// Figure 5(b).
	Window struct{ X0, Y0, X1, Y1 float64 }
	// Nets draws every net as a star from its pin centroid (thin amber
	// lines) under the displacement layer.
	Nets bool
}

// SVG writes the design to w as an SVG document.
func SVG(d *design.Design, w io.Writer, opts Options) error {
	if opts.WidthPx == 0 {
		opts.WidthPx = 1000
	}
	win := opts.Window
	if win.X1 <= win.X0 || win.Y1 <= win.Y0 {
		win.X0, win.Y0 = d.Core.Lo.X, d.Core.Lo.Y
		win.X1, win.Y1 = d.Core.Hi.X, d.Core.Hi.Y
	}
	ww := win.X1 - win.X0
	wh := win.Y1 - win.Y0
	scale := opts.WidthPx / ww
	heightPx := wh * scale

	// SVG y grows downward; design y grows upward.
	tx := func(x float64) float64 { return (x - win.X0) * scale }
	ty := func(y float64) float64 { return heightPx - (y-win.Y0)*scale }

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		opts.WidthPx, heightPx, opts.WidthPx, heightPx); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect x="0" y="0" width="%.2f" height="%.2f" fill="#ffffff" stroke="#333" stroke-width="1"/>`+"\n",
		opts.WidthPx, heightPx)

	// Row guides with rail color hints.
	for _, r := range d.Rows {
		if r.Y+r.Height < win.Y0 || r.Y > win.Y1 {
			continue
		}
		col := "#d8e8d8" // VSS: greenish
		if r.Rail == design.VDD {
			col = "#e8d8d8" // VDD: reddish
		}
		fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="%s" stroke-width="1"/>`+"\n",
			tx(win.X0), ty(r.Y), tx(win.X1), ty(r.Y), col)
	}

	// Cells.
	for _, c := range d.Cells {
		b := c.Bounds()
		if b.Hi.X < win.X0 || b.Lo.X > win.X1 || b.Hi.Y < win.Y0 || b.Lo.Y > win.Y1 {
			continue
		}
		fill := "#7ca6d8" // single height: light blue
		if c.RowSpan > 1 {
			fill = "#3a6db0" // multi-row: darker blue
		}
		if c.Fixed {
			fill = "#888888"
		}
		fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" stroke="#234" stroke-width="0.4" fill-opacity="0.85"/>`+"\n",
			tx(c.X), ty(c.Y+c.H), c.W*scale, c.H*scale, fill)
	}

	// Nets: star topology from the pin centroid.
	if opts.Nets {
		for i := range d.Nets {
			net := &d.Nets[i]
			if len(net.Pins) < 2 {
				continue
			}
			var cx, cy float64
			pts := make([][2]float64, 0, len(net.Pins))
			for _, p := range net.Pins {
				var x, y float64
				if p.CellID < 0 {
					x, y = p.DX, p.DY
				} else {
					c := d.Cells[p.CellID]
					dy := p.DY
					if c.Flipped {
						dy = c.H - p.DY
					}
					x, y = c.X+p.DX, c.Y+dy
				}
				cx += x
				cy += y
				pts = append(pts, [2]float64{x, y})
			}
			cx /= float64(len(pts))
			cy /= float64(len(pts))
			if cx < win.X0 || cx > win.X1 || cy < win.Y0 || cy > win.Y1 {
				continue
			}
			for _, pt := range pts {
				fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#d09030" stroke-width="0.3" stroke-opacity="0.5"/>`+"\n",
					tx(cx), ty(cy), tx(pt[0]), ty(pt[1]))
			}
		}
	}

	// Displacement vectors on top.
	if opts.Displacement {
		for _, c := range d.Cells {
			if c.Fixed || (c.X == c.GX && c.Y == c.GY) {
				continue
			}
			fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#d03030" stroke-width="0.8"/>`+"\n",
				tx(c.GX+c.W/2), ty(c.GY+c.H/2), tx(c.X+c.W/2), ty(c.Y+c.H/2))
		}
	}

	_, err := fmt.Fprintln(w, "</svg>")
	return err
}

// SVGFile renders to a file path.
func SVGFile(d *design.Design, path string, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SVG(d, f, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
