// Package dense provides small dense matrices with LU and Cholesky
// factorizations. It backs the reference solvers (active-set QP, Lemke)
// used to validate the MMSIM legalizer on small instances; the production
// path never touches dense algebra.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	R, C int
	Data []float64 // len R*C, Data[i*C+j] is entry (i, j)
}

// New allocates a zero r x c matrix.
func New(r, c int) *Matrix {
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return New(0, 0)
	}
	c := len(rows[0])
	m := New(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("dense: ragged rows: row %d has %d columns, want %d", i, len(row), c))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// At returns entry (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.R, m.C)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes dst = m * x.
func (m *Matrix) MulVec(dst, x []float64) {
	if len(dst) != m.R || len(x) != m.C {
		panic("dense: MulVec dimension mismatch")
	}
	for i := 0; i < m.R; i++ {
		s := 0.0
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ * x.
func (m *Matrix) MulVecT(dst, x []float64) {
	if len(dst) != m.C || len(x) != m.R {
		panic("dense: MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.C : (i+1)*m.C]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// Mul returns m * o as a new matrix.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.C != o.R {
		panic("dense: Mul dimension mismatch")
	}
	out := New(m.R, o.C)
	for i := 0; i < m.R; i++ {
		for k := 0; k < m.C; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < o.C; j++ {
				out.Data[i*out.C+j] += a * o.At(k, j)
			}
		}
	}
	return out
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// LU holds a partially pivoted LU factorization PA = LU.
type LU struct {
	n    int
	lu   *Matrix
	perm []int // row permutation: row i of the factored matrix is original row perm[i]
	sign int
}

// Factor computes the LU factorization with partial pivoting of a square
// matrix. Returns an error if the matrix is singular to working precision.
func (m *Matrix) Factor() (*LU, error) {
	if m.R != m.C {
		return nil, fmt.Errorf("dense: Factor of non-square %dx%d matrix", m.R, m.C)
	}
	n := m.R
	f := &LU{n: n, lu: m.Clone(), perm: make([]int, n), sign: 1}
	for i := range f.perm {
		f.perm[i] = i
	}
	a := f.lu
	for k := 0; k < n; k++ {
		// Partial pivot.
		p, best := k, math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > best {
				p, best = i, v
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("dense: singular matrix at pivot %d", k)
		}
		if p != k {
			for j := 0; j < n; j++ {
				a.Data[k*n+j], a.Data[p*n+j] = a.Data[p*n+j], a.Data[k*n+j]
			}
			f.perm[k], f.perm[p] = f.perm[p], f.perm[k]
			f.sign = -f.sign
		}
		piv := a.At(k, k)
		for i := k + 1; i < n; i++ {
			l := a.At(i, k) / piv
			a.Set(i, k, l)
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				a.Set(i, j, a.At(i, j)-l*a.At(k, j))
			}
		}
	}
	return f, nil
}

// Solve computes x with A x = b for the factored matrix.
func (f *LU) Solve(b []float64) []float64 {
	if len(b) != f.n {
		panic("dense: LU.Solve dimension mismatch")
	}
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s / f.lu.At(i, i)
	}
	return x
}

// Solve is a one-shot A x = b for a square matrix A.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := a.Factor()
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Cholesky holds the lower-triangular factor of a symmetric positive
// definite matrix, A = L Lᵀ.
type Cholesky struct {
	n int
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric positive
// definite matrix. Only the lower triangle of a is read.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.R != a.C {
		return nil, fmt.Errorf("dense: Cholesky of non-square matrix")
	}
	n := a.R
	l := New(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, fmt.Errorf("dense: matrix not positive definite (pivot %d = %g)", j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve computes x with A x = b for the factored SPD matrix.
func (c *Cholesky) Solve(b []float64) []float64 {
	if len(b) != c.n {
		panic("dense: Cholesky.Solve dimension mismatch")
	}
	n := c.n
	x := make([]float64, n)
	copy(x, b)
	// L y = b
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	// Lᵀ x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}
