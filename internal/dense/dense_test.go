package dense

import (
	"math"
	"math/rand"
	"testing"
)

func TestFromRowsAndAccess(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.R != 2 || m.C != 2 {
		t.Fatalf("dims = %dx%d", m.R, m.C)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Error("At returned wrong entries")
	}
	m.Set(1, 1, 9)
	if m.At(1, 1) != 9 {
		t.Error("Set did not stick")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMulVecAndT(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Errorf("MulVec = %v", dst)
	}
	dt := make([]float64, 3)
	m.MulVecT(dt, []float64{1, 1})
	if dt[0] != 5 || dt[1] != 7 || dt[2] != 9 {
		t.Errorf("MulVecT = %v", dt)
	}
}

func TestMulAndTranspose(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{0, 1}, {1, 0}})
	c := a.Mul(b)
	want := FromRows([][]float64{{2, 1}, {4, 3}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c.Data, want.Data)
		}
	}
	at := a.T()
	if at.At(0, 1) != 3 || at.At(1, 0) != 2 {
		t.Error("transpose wrong")
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestLUSolveNeedsPivoting(t *testing.T) {
	// Zero leading pivot forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Errorf("x = %v, want [3 2]", x)
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("expected singular-matrix error")
	}
}

func TestLURandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(15)
		a := New(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Boost the diagonal so the matrix is comfortably nonsingular.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(12)
		// SPD: A = GᵀG + I.
		g := New(n, n)
		for i := range g.Data {
			g.Data[i] = rng.NormFloat64()
		}
		a := g.T().Mul(g)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+1)
		}
		ch, err := FactorCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		a.MulVec(b, want)
		got := ch.Solve(b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := FromRows([][]float64{{1, 0}, {0, -1}})
	if _, err := FactorCholesky(a); err == nil {
		t.Error("expected not-positive-definite error")
	}
}

func TestCholeskyAgreesWithLU(t *testing.T) {
	a := FromRows([][]float64{{4, 1, 0}, {1, 3, 1}, {0, 1, 2}})
	b := []float64{1, 2, 3}
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	x1 := ch.Solve(b)
	x2, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if math.Abs(x1[i]-x2[i]) > 1e-10 {
			t.Errorf("Cholesky vs LU differ at %d: %g vs %g", i, x1[i], x2[i])
		}
	}
}
