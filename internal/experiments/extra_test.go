package experiments

import (
	"strings"
	"testing"

	"mclg/internal/core"
)

func TestNoiseSensitivityMonotoneDisplacement(t *testing.T) {
	rows, err := NoiseSensitivity("fft_2", 0.004, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		for m, disp := range r.Disp {
			if disp < 0 {
				t.Errorf("level %g method %s errored", r.Level, m)
			}
			if !r.Legal[m] {
				t.Errorf("level %g method %s produced illegal result", r.Level, m)
			}
		}
	}
	// More noise means more displacement for every method.
	for _, m := range Methods {
		if rows[1].Disp[m] <= rows[0].Disp[m] {
			t.Errorf("%s: displacement did not grow with noise (%g -> %g)",
				m, rows[0].Disp[m], rows[1].Disp[m])
		}
	}
	out := FormatNoise(rows)
	if !strings.Contains(out, "ours/ASP-DAC") {
		t.Errorf("missing ratio column:\n%s", out)
	}
}

func TestNoiseSensitivityUnknownBenchmark(t *testing.T) {
	if _, err := NoiseSensitivity("nope", 0.01, []float64{1}); err == nil {
		t.Error("expected error")
	}
}

func TestConvergenceTraceDecreases(t *testing.T) {
	trace, err := ConvergenceTrace("fft_2", 0.004, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 5 {
		t.Fatalf("trace too short: %d", len(trace))
	}
	// The step norm at the end must be far below the early iterations.
	early := trace[1].Step
	late := trace[len(trace)-1].Step
	if late > early/10 {
		t.Errorf("no convergence visible: early %g, late %g", early, late)
	}
	// Iterations are sequential from 0.
	for i, pt := range trace {
		if pt.Iter != i {
			t.Fatalf("trace[%d].Iter = %d", i, pt.Iter)
		}
	}
	short := FormatConvergence(trace, false)
	if !strings.Contains(short, "iterations total") {
		t.Errorf("summary missing:\n%s", short)
	}
	full := FormatConvergence(trace, true)
	if lines := strings.Count(full, "\n"); lines != len(trace)+1 {
		t.Errorf("CSV dump has %d lines, want %d", lines, len(trace)+1)
	}
}

func TestParamSweepGrid(t *testing.T) {
	betas := []float64{0.25, 0.5}
	thetas := []float64{0.5, 1.0}
	pts, err := ParamSweep("fft_2", 0.004, betas, thetas)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4", len(pts))
	}
	// The paper's default must converge.
	for _, pt := range pts {
		if pt.Beta == 0.5 && pt.Theta == 0.5 {
			if !pt.Converged || pt.Diverged {
				t.Errorf("paper default (0.5, 0.5) did not converge: %+v", pt)
			}
		}
	}
	out := FormatParamSweep(pts, betas, thetas)
	if !strings.Contains(out, "0.25") {
		t.Errorf("grid missing rows:\n%s", out)
	}
}
