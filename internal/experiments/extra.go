package experiments

import (
	"fmt"
	"strings"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

// NoiseRow is one row of the GP-noise sensitivity sweep (experiment E9):
// how each legalizer's displacement grows as the global placement degrades.
type NoiseRow struct {
	Level float64 // noise multiplier applied to the generator defaults
	Disp  map[Method]float64
	Legal map[Method]bool
}

// NoiseSensitivity sweeps the global-placement noise level on one
// benchmark and reruns the Table 2 methods at each level. It quantifies
// the paper's core premise: ordering-preserving simultaneous optimization
// wins when the GP is trustworthy; as the GP degrades into noise, the
// ordering loses information and greedy reassignment catches up.
func NoiseSensitivity(benchName string, scale float64, levels []float64) ([]NoiseRow, error) {
	if scale == 0 {
		scale = 0.01
	}
	e, err := gen.FindEntry(benchName)
	if err != nil {
		return nil, err
	}
	var rows []NoiseRow
	for _, level := range levels {
		spec := gen.SuiteSpec(e, scale)
		spec.NoiseX = 0.75 * level
		spec.NoiseY = 0.15 * level
		spec.WarpX = 8 * level
		spec.WarpY = 0.3 * level
		base, err := gen.Generate(spec)
		if err != nil {
			return nil, err
		}
		row := NoiseRow{Level: level, Disp: map[Method]float64{}, Legal: map[Method]bool{}}
		for _, m := range Methods {
			d := base.Clone()
			if err := runMethod(m, d, core.Options{}); err != nil {
				row.Disp[m] = -1
				continue
			}
			row.Disp[m] = metrics.MeasureDisplacement(d).TotalSites
			row.Legal[m] = design.CheckLegal(d).Legal()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatNoise renders the sweep as a text table.
func FormatNoise(rows []NoiseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "noise")
	for _, m := range Methods {
		fmt.Fprintf(&b, " %12s", m)
	}
	fmt.Fprintf(&b, " %14s\n", "ours/ASP-DAC")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8.2f", r.Level)
		for _, m := range Methods {
			if r.Disp[m] < 0 {
				fmt.Fprintf(&b, " %12s", "ERR")
			} else {
				fmt.Fprintf(&b, " %12.0f", r.Disp[m])
			}
		}
		if r.Disp[MethodASPDAC17] > 0 && r.Disp[MethodOurs] > 0 {
			fmt.Fprintf(&b, " %14.3f", r.Disp[MethodOurs]/r.Disp[MethodASPDAC17])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ConvergencePoint is one sample of the MMSIM convergence trace.
type ConvergencePoint struct {
	Iter int
	Step float64 // ||z⁽ᵏ⁾ − z⁽ᵏ⁻¹⁾||∞
}

// ConvergenceTrace runs the MMSIM on one benchmark and records the
// per-iteration step norm — the series behind a convergence plot.
func ConvergenceTrace(benchName string, scale float64, opts core.Options) ([]ConvergencePoint, error) {
	if scale == 0 {
		scale = 0.01
	}
	e, err := gen.FindEntry(benchName)
	if err != nil {
		return nil, err
	}
	d, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		return nil, err
	}
	if err := core.AssignRows(d); err != nil {
		return nil, err
	}
	full := core.New(opts).Opts
	p, err := core.BuildProblem(d, full.Lambda)
	if err != nil {
		return nil, err
	}
	var trace []ConvergencePoint
	full.OnIter = func(k int, dz float64) {
		trace = append(trace, ConvergencePoint{Iter: k, Step: dz})
	}
	if _, _, err := core.SolveMMSIM(p, full); err != nil {
		return nil, err
	}
	return trace, nil
}

// FormatConvergence renders a decimated (log-spaced) view of the trace
// suitable for terminals, plus a CSV-ish full dump when full is true.
func FormatConvergence(trace []ConvergencePoint, full bool) string {
	var b strings.Builder
	if full {
		b.WriteString("iter,step\n")
		for _, pt := range trace {
			fmt.Fprintf(&b, "%d,%g\n", pt.Iter, pt.Step)
		}
		return b.String()
	}
	fmt.Fprintf(&b, "%8s %14s\n", "iter", "||Δz||∞")
	next := 1
	for _, pt := range trace {
		if pt.Iter+1 >= next || pt.Iter == len(trace)-1 {
			fmt.Fprintf(&b, "%8d %14.6g\n", pt.Iter+1, pt.Step)
			next *= 2
		}
	}
	fmt.Fprintf(&b, "(%d iterations total)\n", len(trace))
	return b.String()
}

// ParamPoint is one (β*, θ*) sample of the splitting-constant sweep.
type ParamPoint struct {
	Beta, Theta float64
	Iterations  int
	Converged   bool
	Diverged    bool
}

// ParamSweep maps MMSIM convergence behavior over a grid of splitting
// constants on one benchmark — the constants the paper fixes at
// β* = θ* = 0.5 "determined by the formulas given in [2]". The sweep shows
// how much headroom that choice has before the iteration degrades or
// diverges.
func ParamSweep(benchName string, scale float64, betas, thetas []float64) ([]ParamPoint, error) {
	if scale == 0 {
		scale = 0.01
	}
	e, err := gen.FindEntry(benchName)
	if err != nil {
		return nil, err
	}
	base, err := gen.Generate(gen.SuiteSpec(e, scale))
	if err != nil {
		return nil, err
	}
	var out []ParamPoint
	for _, beta := range betas {
		for _, theta := range thetas {
			d := base.Clone()
			if err := core.AssignRows(d); err != nil {
				return nil, err
			}
			p, err := core.BuildProblem(d, 1000)
			if err != nil {
				return nil, err
			}
			opts := core.New(core.Options{Beta: beta, Theta: theta}).Opts
			pt := ParamPoint{Beta: beta, Theta: theta}
			_, st, err := core.SolveMMSIM(p, opts)
			if err != nil {
				pt.Diverged = true
			} else {
				pt.Iterations = st.Iterations
				pt.Converged = st.Converged
			}
			out = append(out, pt)
		}
	}
	return out, nil
}

// FormatParamSweep renders the sweep as a β×θ grid of iteration counts.
func FormatParamSweep(points []ParamPoint, betas, thetas []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s", "β\\θ")
	for _, th := range thetas {
		fmt.Fprintf(&b, " %10.2f", th)
	}
	b.WriteString("\n")
	idx := 0
	for _, beta := range betas {
		fmt.Fprintf(&b, "%8.2f", beta)
		for range thetas {
			pt := points[idx]
			idx++
			switch {
			case pt.Diverged:
				fmt.Fprintf(&b, " %10s", "DIV")
			case !pt.Converged:
				fmt.Fprintf(&b, " %10s", ">max")
			default:
				fmt.Fprintf(&b, " %10d", pt.Iterations)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
