// Package experiments regenerates the paper's evaluation artifacts on the
// synthetic benchmark suite: Table 1 (benchmark statistics and illegal
// cells after the MMSIM), Table 2 (displacement / ΔHPWL / runtime for the
// DAC'16, DAC'16-Imp, ASP-DAC'17 baselines and our legalizer), and the
// Section 5.3 single-row-height optimality experiment (MMSIM vs. Abacus
// PlaceRow).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mclg/internal/abacus"
	"mclg/internal/baselines/chow"
	"mclg/internal/baselines/wang"
	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
	"mclg/internal/tetris"
)

// Config selects the benchmarks and scale of an experiment run.
type Config struct {
	// Scale shrinks the suite's full cell counts (1 = paper size); the
	// default 0.01 keeps the whole suite laptop-fast.
	Scale float64
	// Benchmarks filters by name; empty means the full 20-benchmark suite.
	Benchmarks []string
	// Opts overrides the legalizer options (zero fields take the paper's
	// defaults).
	Opts core.Options
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 0.01
	}
	return c
}

func (c Config) entries() ([]gen.SuiteEntry, error) {
	if len(c.Benchmarks) == 0 {
		return gen.Suite, nil
	}
	var out []gen.SuiteEntry
	for _, name := range c.Benchmarks {
		e, err := gen.FindEntry(name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Name       string
	SCells     int
	DCells     int
	Density    float64
	IllegalN   int     // "#I. Cell": illegal cells after the MMSIM stage
	IllegalPct float64 // "%I. Cell"
}

// Table1 runs the MMSIM legalization on every benchmark and reports the
// illegal-cell statistics the Tetris stage has to repair. Benchmarks run
// concurrently (each on its own design clone); the output order is the
// suite order regardless of completion order.
func Table1(cfg Config) ([]Table1Row, error) {
	cfg = cfg.withDefaults()
	entries, err := cfg.entries()
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(entries))
	err = forEachEntry(entries, func(i int, e gen.SuiteEntry) error {
		d, err := gen.Generate(gen.SuiteSpec(e, cfg.Scale))
		if err != nil {
			return err
		}
		stats, err := core.New(cfg.Opts).Legalize(d)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		n := len(d.Cells)
		rows[i] = Table1Row{
			Name:       e.Name,
			SCells:     countSpan(d, 1),
			DCells:     countSpan(d, 2),
			Density:    d.Density(),
			IllegalN:   stats.Illegal,
			IllegalPct: 100 * float64(stats.Illegal) / float64(n),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// forEachEntry runs fn over the entries with a bounded worker pool and
// returns the first error.
func forEachEntry(entries []gen.SuiteEntry, fn func(i int, e gen.SuiteEntry) error) error {
	workers := runtime.GOMAXPROCS(0)
	if workers > len(entries) {
		workers = len(entries)
	}
	if workers < 1 {
		workers = 1
	}
	type job struct {
		i int
		e gen.SuiteEntry
	}
	jobs := make(chan job)
	errs := make(chan error, len(entries))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if err := fn(j.i, j.e); err != nil {
					errs <- err
				}
			}
		}()
	}
	for i, e := range entries {
		jobs <- job{i, e}
	}
	close(jobs)
	wg.Wait()
	close(errs)
	return <-errs
}

func countSpan(d *design.Design, span int) int {
	n := 0
	for _, c := range d.Cells {
		if c.RowSpan == span {
			n++
		}
	}
	return n
}

// Method identifies a legalizer column of Table 2.
type Method string

// The four Table 2 columns.
const (
	MethodDAC16    Method = "DAC'16"
	MethodDAC16Imp Method = "DAC'16-Imp"
	MethodASPDAC17 Method = "ASP-DAC'17"
	MethodOurs     Method = "Ours"
)

// Methods lists the Table 2 columns in paper order.
var Methods = []Method{MethodDAC16, MethodDAC16Imp, MethodASPDAC17, MethodOurs}

// MethodResult is one method's outcome on one benchmark.
type MethodResult struct {
	DispSites float64
	DeltaHPWL float64 // fraction, e.g. 0.0112 for 1.12%
	Runtime   time.Duration
	Legal     bool
	Err       string
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Name    string
	GPHPWL  float64
	Results map[Method]MethodResult
}

// Table2 runs all four legalizers on every benchmark. Benchmarks run
// concurrently; the four methods of one benchmark run sequentially so the
// per-method runtimes stay comparable.
func Table2(cfg Config) ([]Table2Row, error) {
	cfg = cfg.withDefaults()
	entries, err := cfg.entries()
	if err != nil {
		return nil, err
	}
	rows := make([]Table2Row, len(entries))
	err = forEachEntry(entries, func(i int, e gen.SuiteEntry) error {
		base, err := gen.Generate(gen.SuiteSpec(e, cfg.Scale))
		if err != nil {
			return err
		}
		row := Table2Row{
			Name:    e.Name,
			GPHPWL:  metrics.HPWLGlobal(base),
			Results: map[Method]MethodResult{},
		}
		for _, m := range Methods {
			d := base.Clone()
			t0 := time.Now()
			runErr := runMethod(m, d, cfg.Opts)
			elapsed := time.Since(t0)
			res := MethodResult{Runtime: elapsed}
			if runErr != nil {
				res.Err = runErr.Error()
			} else {
				res.DispSites = metrics.MeasureDisplacement(d).TotalSites
				res.DeltaHPWL = metrics.DeltaHPWL(d)
				res.Legal = design.CheckLegal(d).Legal()
			}
			row.Results[m] = res
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func runMethod(m Method, d *design.Design, opts core.Options) error {
	switch m {
	case MethodDAC16:
		return chow.Legalize(d)
	case MethodDAC16Imp:
		return chow.LegalizeImproved(d, chow.Options{})
	case MethodASPDAC17:
		if err := wang.Legalize(d, wang.Options{}); err != nil {
			return err
		}
		_, err := tetris.Allocate(d)
		return err
	case MethodOurs:
		_, err := core.New(opts).Legalize(d)
		return err
	default:
		return fmt.Errorf("experiments: unknown method %q", m)
	}
}

// NormalizedAverages computes the last row of Table 2: per-method
// displacement, ΔHPWL, and runtime normalized to "Ours" and averaged over
// benchmarks (geometric-free arithmetic mean of ratios, as the paper does).
func NormalizedAverages(rows []Table2Row) map[Method][3]float64 {
	out := map[Method][3]float64{}
	for _, m := range Methods {
		var sum [3]float64
		n := 0
		for _, r := range rows {
			ours, a := r.Results[MethodOurs], r.Results[m]
			if ours.Err != "" || a.Err != "" {
				continue
			}
			if ours.DispSites == 0 || ours.DeltaHPWL == 0 || ours.Runtime == 0 {
				continue
			}
			sum[0] += a.DispSites / ours.DispSites
			sum[1] += a.DeltaHPWL / ours.DeltaHPWL
			sum[2] += float64(a.Runtime) / float64(ours.Runtime)
			n++
		}
		if n > 0 {
			sum[0] /= float64(n)
			sum[1] /= float64(n)
			sum[2] /= float64(n)
		}
		out[m] = sum
	}
	return out
}

// SingleRowRow is one row of the Section 5.3 experiment.
type SingleRowRow struct {
	Name          string
	DispMMSIM     float64 // x-displacement objective at the relaxed optimum
	DispPlaceRow  float64
	RelDiff       float64 // |Δ| / max(1, DispPlaceRow)
	TimeMMSIM     time.Duration
	TimePlaceRow  time.Duration
	MMSIMIters    int
	MMSIMConverge bool
}

// SingleRow reproduces Section 5.3: on the single-height variants of the
// suite, the MMSIM and Abacus's PlaceRow legalize the same row assignment
// and must reach the same (optimal) total displacement; the paper reports a
// 1.51× MMSIM speedup.
func SingleRow(cfg Config) ([]SingleRowRow, error) {
	cfg = cfg.withDefaults()
	entries, err := cfg.entries()
	if err != nil {
		return nil, err
	}
	var rows []SingleRowRow
	for _, e := range entries {
		spec := gen.SingleHeightVariant(gen.SuiteSpec(e, cfg.Scale))
		base, err := gen.Generate(spec)
		if err != nil {
			return nil, err
		}
		if err := core.AssignRows(base); err != nil {
			return nil, err
		}
		mm := base.Clone()
		pr := base.Clone()

		row := SingleRowRow{Name: e.Name}

		t0 := time.Now()
		p, err := core.BuildProblem(mm, 1000)
		if err != nil {
			return nil, err
		}
		opts := cfg.Opts
		if opts.Eps == 0 {
			opts.Eps = 1e-6
		}
		x, st, err := core.SolveMMSIM(p, core.New(opts).Opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name, err)
		}
		core.Restore(p, x)
		row.TimeMMSIM = time.Since(t0)
		row.MMSIMIters = st.Iterations
		row.MMSIMConverge = st.Converged

		t1 := time.Now()
		if err := abacus.PlaceRowsAssigned(pr, true); err != nil {
			return nil, err
		}
		row.TimePlaceRow = time.Since(t1)

		row.DispMMSIM = xObjective(mm)
		row.DispPlaceRow = xObjective(pr)
		den := row.DispPlaceRow
		if den < 1 {
			den = 1
		}
		diff := row.DispMMSIM - row.DispPlaceRow
		if diff < 0 {
			diff = -diff
		}
		row.RelDiff = diff / den
		rows = append(rows, row)
	}
	return rows, nil
}

func xObjective(d *design.Design) float64 {
	s := 0.0
	for _, c := range d.Cells {
		dx := c.X - c.GX
		s += dx * dx
	}
	return s
}

// FormatTable1 renders Table 1 rows as a fixed-width text table.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %10s %8s %9s %9s\n",
		"Benchmark", "#S. Cell", "#D. Cell", "Density", "#I. Cell", "%I. Cell")
	var sumS, sumD, sumI int
	var sumDen, sumPct float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %10d %10d %8.2f %9d %9.2f\n",
			r.Name, r.SCells, r.DCells, r.Density, r.IllegalN, r.IllegalPct)
		sumS += r.SCells
		sumD += r.DCells
		sumI += r.IllegalN
		sumDen += r.Density
		sumPct += r.IllegalPct
	}
	n := len(rows)
	if n > 0 {
		fmt.Fprintf(&b, "%-16s %10d %10d %8.2f %9d %9.2f\n",
			"Average", sumS/n, sumD/n, sumDen/float64(n), sumI/n, sumPct/float64(n))
	}
	return b.String()
}

// FormatTable2 renders Table 2 rows plus the normalized-average footer.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s", "Benchmark", "GP HPWL")
	for _, m := range Methods {
		fmt.Fprintf(&b, " %12s", string(m)+" disp")
	}
	for _, m := range Methods {
		fmt.Fprintf(&b, " %11s", string(m)+" ΔW%")
	}
	for _, m := range Methods {
		fmt.Fprintf(&b, " %11s", string(m)+" t(s)")
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.3g", r.Name, r.GPHPWL)
		for _, m := range Methods {
			res := r.Results[m]
			if res.Err != "" {
				fmt.Fprintf(&b, " %12s", "ERR")
				continue
			}
			fmt.Fprintf(&b, " %12.0f", res.DispSites)
		}
		for _, m := range Methods {
			res := r.Results[m]
			if res.Err != "" {
				fmt.Fprintf(&b, " %11s", "ERR")
				continue
			}
			fmt.Fprintf(&b, " %11.2f", 100*res.DeltaHPWL)
		}
		for _, m := range Methods {
			res := r.Results[m]
			fmt.Fprintf(&b, " %11.3f", res.Runtime.Seconds())
		}
		b.WriteString("\n")
	}
	norm := NormalizedAverages(rows)
	fmt.Fprintf(&b, "%-16s %12s", "N. Average", "")
	for _, m := range Methods {
		fmt.Fprintf(&b, " %12.2f", norm[m][0])
	}
	for _, m := range Methods {
		fmt.Fprintf(&b, " %11.2f", norm[m][1])
	}
	for _, m := range Methods {
		fmt.Fprintf(&b, " %11.2f", norm[m][2])
	}
	b.WriteString("\n")
	return b.String()
}

// FormatSingleRow renders the Section 5.3 comparison.
func FormatSingleRow(rows []SingleRowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %10s %12s %12s %8s\n",
		"Benchmark", "MMSIM obj", "PlaceRow obj", "rel.diff", "MMSIM t(s)", "PlcRow t(s)", "iters")
	var speedups []float64
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %14.1f %14.1f %10.2e %12.4f %12.4f %8d\n",
			r.Name, r.DispMMSIM, r.DispPlaceRow, r.RelDiff,
			r.TimeMMSIM.Seconds(), r.TimePlaceRow.Seconds(), r.MMSIMIters)
		if r.TimeMMSIM > 0 {
			speedups = append(speedups, float64(r.TimePlaceRow)/float64(r.TimeMMSIM))
		}
	}
	if len(speedups) > 0 {
		sort.Float64s(speedups)
		fmt.Fprintf(&b, "median PlaceRow/MMSIM runtime ratio: %.2f\n", speedups[len(speedups)/2])
	}
	return b.String()
}
