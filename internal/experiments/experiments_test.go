package experiments

import (
	"strings"
	"testing"
)

// Small, fast configuration: three benchmarks at 0.4% scale.
func smallCfg() Config {
	return Config{
		Scale:      0.004,
		Benchmarks: []string{"fft_2", "pci_bridge32_b", "des_perf_b"},
	}
}

func TestTable1SmallSuite(t *testing.T) {
	rows, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		if r.SCells == 0 || r.DCells == 0 {
			t.Errorf("%s: zero cell counts", r.Name)
		}
		if r.IllegalPct < 0 || r.IllegalPct > 100 {
			t.Errorf("%s: illegal pct %g out of range", r.Name, r.IllegalPct)
		}
		// The qualitative Table 1 claim: low-density benchmarks need very
		// few repairs.
		if r.Density < 0.55 && r.IllegalPct > 5 {
			t.Errorf("%s: %g%% illegal at density %.2f", r.Name, r.IllegalPct, r.Density)
		}
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "fft_2") || !strings.Contains(out, "Average") {
		t.Errorf("formatted table missing rows:\n%s", out)
	}
}

func TestTable2SmallSuite(t *testing.T) {
	rows, err := Table2(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for m, res := range r.Results {
			if res.Err != "" {
				t.Errorf("%s/%s: %s", r.Name, m, res.Err)
				continue
			}
			if !res.Legal {
				t.Errorf("%s/%s: illegal result", r.Name, m)
			}
			if res.DispSites <= 0 {
				t.Errorf("%s/%s: nonpositive displacement", r.Name, m)
			}
		}
	}
	// The Table 2 shape: our displacement beats or matches the greedy
	// DAC'16 baseline on average.
	norm := NormalizedAverages(rows)
	if norm[MethodDAC16][0] < 1.0 {
		t.Errorf("DAC'16 normalized displacement %.3f < 1: ours should win on average", norm[MethodDAC16][0])
	}
	if norm[MethodOurs][0] != 1 {
		t.Errorf("Ours normalized to %g, want 1", norm[MethodOurs][0])
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "N. Average") {
		t.Errorf("formatted table missing footer:\n%s", out)
	}
}

func TestSingleRowExperiment(t *testing.T) {
	rows, err := SingleRow(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.MMSIMConverge {
			t.Errorf("%s: MMSIM did not converge", r.Name)
		}
		// Section 5.3: identical displacement up to solver tolerance.
		if r.RelDiff > 1e-3 {
			t.Errorf("%s: MMSIM %.2f vs PlaceRow %.2f (rel %g)",
				r.Name, r.DispMMSIM, r.DispPlaceRow, r.RelDiff)
		}
	}
	out := FormatSingleRow(rows)
	if !strings.Contains(out, "runtime ratio") {
		t.Errorf("formatted output missing summary:\n%s", out)
	}
}

func TestConfigUnknownBenchmark(t *testing.T) {
	if _, err := Table1(Config{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}
