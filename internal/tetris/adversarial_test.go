package tetris

import (
	"errors"
	"math/rand"
	"testing"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// density returns movable cell area over core area, in site units.
func density(d *design.Design) float64 {
	area := 0.0
	for _, c := range d.Cells {
		if !c.Fixed {
			area += (c.W / d.SiteW) * (c.H / d.RowHeight)
		}
	}
	total := float64(len(d.Rows) * d.Rows[0].NumSites)
	return area / total
}

// TestAllocateAdversarialDensitySingles packs a core to ~0.99 utilization
// with every cell piled near the center, so the first greedy pass must
// fragment and the repair machinery (bounded eviction, then the frontier
// rebuild) carries the placement. The suite's invariant: full legality with
// zero unplaced cells even at near-exact fill.
func TestAllocateAdversarialDensitySingles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := mkDesign(8, 120)
	for r := 0; r < 8; r++ {
		rem := 120
		if r < 4 {
			rem -= 3 // 12 sites of slack over 960: utilization 0.9875
		}
		for rem > 0 {
			w := 2 + rng.Intn(5)
			if w > rem {
				w = rem
			}
			c := d.AddCell("c", float64(w), 10, design.VSS)
			c.X = 60 + rng.NormFloat64()*5
			c.Y = d.RowY(rng.Intn(8))
			rem -= w
		}
	}
	if dens := density(d); dens < 0.98 {
		t.Fatalf("test construction broken: density %g < 0.98", dens)
	}
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Fatalf("%d unplaced at density %.4f", res.Unplaced, density(d))
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
	if !res.Rebuilt && res.Repaired == 0 {
		t.Fatal("adversarial pile-up did not exercise the repair fallbacks")
	}
}

// TestAllocateAdversarialDensityMixed repeats the saturation test with
// double-height cells in the mix, which constrain row choice through rail
// compatibility and make the packing much harder for the eviction and
// frontier-compaction fallbacks.
func TestAllocateAdversarialDensityMixed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := mkDesign(8, 100) // 800 site units of capacity
	area := 0
	// Double-height cells first: width 4, both rails, piled at the center.
	for i := 0; i < 12; i++ {
		rail := design.VSS
		if i%2 == 1 {
			rail = design.VDD
		}
		c := d.AddCell("d", 4, 20, rail)
		row := nearestCompatRow(d, c, rng.Intn(7))
		c.X, c.Y = 50, d.RowY(row)
		area += 8
	}
	// Singles fill the rest up to 98.5% utilization.
	for area < 788 {
		w := 2 + rng.Intn(4)
		if area+w > 788 {
			w = 788 - area
		}
		c := d.AddCell("c", float64(w), 10, design.VSS)
		c.X = 50 + rng.NormFloat64()*8
		c.Y = d.RowY(rng.Intn(8))
		area += w
	}
	if dens := density(d); dens < 0.98 {
		t.Fatalf("test construction broken: density %g < 0.98", dens)
	}
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Fatalf("%d unplaced at density %.4f (rebuilt=%v)", res.Unplaced, density(d), res.Rebuilt)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}

// TestAllocateAdversarialAroundBlockage saturates the free space around a
// fixed macro: evictions must respect the blockage and the rebuild must
// route cells around it.
func TestAllocateAdversarialAroundBlockage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := mkDesign(6, 80) // 480 site units
	m := d.AddCell("macro", 20, 30, design.VSS)
	m.Fixed = true
	m.X, m.Y = 30, 10 // blocks 60 site units in rows 1–3
	free := 480 - 60
	area := 0
	target := free * 98 / 100
	for area < target {
		w := 2 + rng.Intn(4)
		if area+w > target {
			w = target - area
		}
		c := d.AddCell("c", float64(w), 10, design.VSS)
		c.X = 35 + rng.NormFloat64()*6 // piled onto the macro
		c.Y = d.RowY(rng.Intn(6))
		area += w
	}
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Fatalf("%d unplaced around blockage (rebuilt=%v)", res.Unplaced, res.Rebuilt)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}

// TestAllocateFullyBlockedBandErrors pins the silent-infeasible fix: when
// fixed cells blanket every row, a movable cell has no candidate site in any
// fallback rung. Before the fix the allocator returned a nil error with
// Unplaced > 0 and the cell parked at a garbage (overlapping) position;
// callers then committed it. The contract now is a typed
// mclgerr.ErrUnplacedCells error so no caller can miss it.
func TestAllocateFullyBlockedBandErrors(t *testing.T) {
	d := mkDesign(3, 30)
	for r := 0; r < 3; r++ {
		f := d.AddCell("blk", 30, 10, design.VSS)
		f.Fixed = true
		f.X, f.Y = 0, d.RowY(r)
	}
	c := d.AddCell("c", 4, 10, design.VSS)
	c.X, c.Y = 10, 0
	c.GX, c.GY = 10, 0

	res, err := Allocate(d)
	if err == nil {
		t.Fatal("expected an error for a fully blocked row band, got nil")
	}
	if !errors.Is(err, mclgerr.ErrUnplacedCells) {
		t.Fatalf("err = %v, want mclgerr.ErrUnplacedCells", err)
	}
	if res == nil || res.Unplaced == 0 {
		t.Fatalf("res = %+v, want Unplaced > 0 alongside the error", res)
	}
	// The error classifies for retry/reporting machinery.
	if got := mclgerr.Class(err); got != "unplaced_cells" {
		t.Errorf("Class(err) = %q, want %q", got, "unplaced_cells")
	}
}
