package tetris

import (
	"math"
	"math/rand"
	"testing"

	"mclg/internal/design"
)

func mkDesign(rows, sites int) *design.Design {
	return design.NewDesign(design.Config{
		NumRows: rows, NumSites: sites, RowHeight: 10, SiteW: 1,
	})
}

func TestAllocateSnapsToSites(t *testing.T) {
	d := mkDesign(2, 50)
	c := d.AddCell("c", 4, 10, design.VSS)
	c.GX, c.GY = 10.3, 0
	c.X, c.Y = 10.3, 0
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.X != 10 {
		t.Errorf("X = %g, want 10 (snapped)", c.X)
	}
	if res.Illegal != 0 {
		t.Errorf("Illegal = %d, want 0", res.Illegal)
	}
	if math.Abs(res.MaxSnapDist-0.3) > 1e-9 {
		t.Errorf("MaxSnapDist = %g, want 0.3", res.MaxSnapDist)
	}
}

func TestAllocateResolvesOverlapByShove(t *testing.T) {
	d := mkDesign(2, 50)
	a := d.AddCell("a", 5, 10, design.VSS)
	b := d.AddCell("b", 5, 10, design.VSS)
	a.X, a.Y = 10, 0
	b.X, b.Y = 12, 0 // overlaps a
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	// One cell was illegal after MMSIM (the overlap), and the shove pass
	// resolves it without the nearest-free repair stage.
	if res.Illegal != 1 {
		t.Errorf("Illegal = %d, want 1", res.Illegal)
	}
	if res.Repaired != 0 {
		t.Errorf("Repaired = %d, want 0 (shove pass should fix it)", res.Repaired)
	}
	if a.X >= b.X {
		t.Errorf("ordering lost: a.X=%g, b.X=%g", a.X, b.X)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("still illegal: %v", rep)
	}
}

func TestAllocateRepairsOverfullRow(t *testing.T) {
	// Row 0 is overfull: 6 cells of width 10 in a 50-site row. The shove
	// pass cannot fix that; the repair stage must move cells to row 1.
	d := mkDesign(2, 50)
	for i := 0; i < 6; i++ {
		c := d.AddCell("c", 10, 10, design.VSS)
		c.X, c.Y = float64(8*i), 0
	}
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Illegal == 0 {
		t.Error("expected repair for an overfull row")
	}
	if res.Unplaced != 0 {
		t.Fatalf("Unplaced = %d", res.Unplaced)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("still illegal: %v", rep)
	}
}

func TestAllocateOutOfRightBoundary(t *testing.T) {
	d := mkDesign(1, 20)
	a := d.AddCell("a", 8, 10, design.VSS)
	a.X, a.Y = 30, 0 // way past the right edge (relaxed boundary in MMSIM)
	if _, err := Allocate(d); err != nil {
		t.Fatal(err)
	}
	if a.X+a.W > d.Core.Hi.X {
		t.Errorf("cell still out of boundary: X=%g", a.X)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}

func TestAllocateRespectsRailOnRepair(t *testing.T) {
	d := mkDesign(6, 30)
	// Fill row 0 completely so the double-height VSS cell must move; its
	// only legal rows are VSS rails (0, 2, 4).
	blocker := d.AddCell("blk", 30, 10, design.VSS)
	blocker.X, blocker.Y = 0, 0
	dc := d.AddCell("dc", 6, 20, design.VSS)
	dc.X, dc.Y = 0, 0 // overlaps blocker
	if _, err := Allocate(d); err != nil {
		t.Fatal(err)
	}
	row := d.RowAt(dc.Y + 1)
	if d.Rows[row].Rail != design.VSS {
		t.Errorf("double-height cell repaired onto %v rail row %d", d.Rows[row].Rail, row)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}

func TestAllocateShovePreservesSeparatedCells(t *testing.T) {
	d := mkDesign(1, 100)
	a := d.AddCell("a", 10, 10, design.VSS)
	a.X, a.Y = 10, 0
	b := d.AddCell("b", 5, 10, design.VSS)
	b.X, b.Y = 40, 0 // far away: nothing should move
	if _, err := Allocate(d); err != nil {
		t.Fatal(err)
	}
	if a.X != 10 || b.X != 40 {
		t.Errorf("separated cells moved: a=%g b=%g", a.X, b.X)
	}
}

func TestAllocateFixedCellsBlock(t *testing.T) {
	d := mkDesign(2, 40)
	f := d.AddCell("f", 10, 10, design.VSS)
	f.Fixed = true
	f.X, f.Y = 10.5, 0 // off-grid fixed cell blocks sites 10..21
	c := d.AddCell("c", 4, 10, design.VSS)
	c.X, c.Y = 12, 0
	if _, err := Allocate(d); err != nil {
		t.Fatal(err)
	}
	if c.Bounds().Overlaps(f.Bounds()) {
		t.Errorf("movable cell overlaps fixed cell: c at %g", c.X)
	}
	if f.X != 10.5 {
		t.Error("fixed cell moved")
	}
}

func TestAllocateErrorOnBadRow(t *testing.T) {
	d := mkDesign(2, 40)
	c := d.AddCell("c", 4, 10, design.VSS)
	c.X, c.Y = 0, 5 // not on a row boundary
	if _, err := Allocate(d); err == nil {
		t.Error("expected error for off-row cell")
	}
}

func TestAllocateDensePackingViaRebuild(t *testing.T) {
	// Saturate a tiny core so the first-pass greedy inevitably fragments;
	// the rebuild fallback must still find the (unique up to permutation)
	// full packing.
	d := mkDesign(2, 20)
	for i := 0; i < 8; i++ {
		c := d.AddCell("c", 5, 10, design.VSS)
		c.X, c.Y = 7, 0 // everyone piled at the same spot
	}
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Fatalf("Unplaced = %d with exactly-full core", res.Unplaced)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}

func TestAllocateRandomizedAlwaysLegal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		d := mkDesign(4+rng.Intn(4), 40+rng.Intn(40))
		n := 10 + rng.Intn(30)
		for i := 0; i < n; i++ {
			h := d.RowHeight
			rail := design.VSS
			if rng.Float64() < 0.25 {
				h *= 2
				if rng.Intn(2) == 0 {
					rail = design.VDD
				}
			}
			c := d.AddCell("c", float64(1+rng.Intn(6)), h, rail)
			// Random row-aligned y, arbitrary x (possibly out of bounds).
			row := rng.Intn(len(d.Rows) - int(h/d.RowHeight) + 1)
			if c.EvenSpan() {
				row = nearestCompatRow(d, c, row)
			}
			c.Y = d.RowY(row)
			c.X = rng.Float64()*float64(d.Rows[0].NumSites)*1.2 - 5
		}
		res, err := Allocate(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Unplaced != 0 {
			t.Fatalf("trial %d: %d unplaced", trial, res.Unplaced)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("trial %d: %v", trial, rep)
		}
	}
}

func nearestCompatRow(d *design.Design, c *design.Cell, row int) int {
	best := -1
	for r := 0; r+c.RowSpan <= len(d.Rows); r++ {
		if d.RailCompatible(c, r) {
			if best < 0 || abs(r-row) < abs(best-row) {
				best = r
			}
		}
	}
	return best
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
