// Package tetris implements the paper's Tetris-like allocation stage: after
// the MMSIM produces real-valued x positions on assigned rows, every cell is
// snapped to the nearest placement site; cells that then overlap another
// cell or cross the right chip boundary are marked illegal and re-placed at
// the nearest free site run, searching rail-compatible rows outward from
// the cell's current position.
//
// Table 1 of the paper shows the illegal-cell ratio after MMSIM averages
// 0.03%, which is why this local repair preserves near-optimality.
package tetris

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
	"mclg/internal/par"
)

// Result reports what the allocation did.
type Result struct {
	Illegal      int // cells illegal after MMSIM: overlapping or out of boundary
	Unplaced     int // cells for which no free position was found (should be 0)
	MaxSnapDist  float64
	RepairMovedX float64 // total |Δx| of repaired cells, in sites
	RepairMovedY float64 // total |Δy| of repaired cells, in sites
	Rebuilt      bool    // the global rebuild fallback ran (quality hit)
	RepairFailed int     // cells the per-cell repair could not place
	Repaired     int     // cells re-placed by the nearest-free repair stage
}

// Allocate legalizes the design in place. Cells must already be assigned to
// valid rows (y on a row boundary). Fixed cells are inserted into the
// occupancy grid first and never moved.
//
// The pass ordering mirrors the paper: snap every cell to its nearest site,
// scan cells row-major/left-to-right accepting collision-free cells, then
// repair the remaining (illegal) cells one by one at their nearest free
// position.
func Allocate(d *design.Design) (*Result, error) {
	return AllocateContext(context.Background(), d)
}

// cancelCheckEvery is how many per-cell repair steps pass between context
// polls in the allocation loops.
const cancelCheckEvery = 256

// AllocateContext is Allocate with cooperative cancellation: the per-cell
// placement and repair loops poll ctx periodically and abort with an
// mclgerr.ErrCanceled-matching error when the context is done.
func AllocateContext(ctx context.Context, d *design.Design) (*Result, error) {
	return AllocateContextP(ctx, d, 1)
}

// cand is one movable cell queued for the left-to-right legality scan.
type cand struct {
	c   *design.Cell
	x   float64 // snapped x
	row int
}

// AllocateContextP is AllocateContext with the embarrassingly parallel
// per-cell stages — row validation, the illegal-cell count, snapping —
// sharded across workers (0 = GOMAXPROCS, 1 = serial). The occupancy scan,
// shove, and repair passes stay serial: they thread one mutable grid through
// every step. All worker counts produce the identical placement; the
// parallel stages write disjoint per-cell or per-row state and reduce in
// chunk order (see internal/par).
func AllocateContextP(ctx context.Context, d *design.Design, workers int) (*Result, error) {
	res := &Result{}
	occ := design.NewOccupancy(d)

	for _, c := range d.Cells {
		if !c.Fixed {
			continue
		}
		// Fixed cells block sites; an off-grid fixed cell blocks every site
		// it touches. (The synthetic suite has none, but Bookshelf designs
		// may.)
		blockFixed(occ, d, c)
	}

	movable := movableCells(d)
	if err := par.ReduceErr(workers, len(movable), par.GrainCells, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			c := movable[i]
			row := d.RowAt(c.Y + d.RowHeight/2)
			if row < 0 || row+c.RowSpan > len(d.Rows) ||
				math.Abs(c.Y-d.RowY(row)) > 1e-6*d.RowHeight {
				return mclgerr.Invalidf("tetris: cell %d not on a valid row (y=%g)", c.ID, c.Y)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Count the cells the MMSIM left illegal (Table 1's "#I. Cell"):
	// overlapping another cell or beyond the right boundary.
	res.Illegal = countIllegalP(d, workers)

	// Shove pass: enforce the right boundary and within-row ordering by
	// pushing cells left, right-to-left per row, before snapping. This
	// resolves the out-of-right-boundary cells the relaxed MMSIM produces
	// (and small subcell-mismatch overlaps) while preserving the solver's
	// cell ordering — the "Tetris" in Tetris-like allocation.
	shoveLeft(d)

	// Snapshot the solver's (shoved) positions: the rebuild fallbacks
	// restart from here rather than from post-repair positions.
	original := savePositions(d)

	cands := make([]cand, len(movable))
	par.For(workers, len(movable), par.GrainCells, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := movable[i]
			cands[i] = cand{c, snapClamp(d, c, c.X), d.RowAt(c.Y + d.RowHeight/2)}
		}
	})
	res.MaxSnapDist = par.ReduceMax(workers, len(cands), par.GrainCells, func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			if dist := math.Abs(cands[i].x-cands[i].c.X) / d.SiteW; dist > m {
				m = dist
			}
		}
		return m
	})
	// Deterministic scan order: by snapped x, then row, then ID — the
	// left-to-right check the paper describes.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].x != cands[j].x {
			return cands[i].x < cands[j].x
		}
		if cands[i].row != cands[j].row {
			return cands[i].row < cands[j].row
		}
		return cands[i].c.ID < cands[j].c.ID
	})

	var illegal []cand
	for i, cd := range cands {
		if i%cancelCheckEvery == 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, err
			}
		}
		y := d.RowY(cd.row)
		if occ.Fits(cd.c, cd.x, y) {
			if err := occ.Place(cd.c, cd.x, y); err != nil {
				return nil, err
			}
			cd.c.X, cd.c.Y = cd.x, y
		} else {
			illegal = append(illegal, cd)
		}
	}
	res.Repaired = len(illegal)

	// Repair hardest-first: tall and wide cells need long contiguous free
	// runs, so they get first pick; small cells slot into the fragments.
	sort.Slice(illegal, func(i, j int) bool {
		a, b := illegal[i].c, illegal[j].c
		if a.RowSpan != b.RowSpan {
			return a.RowSpan > b.RowSpan
		}
		if a.W != b.W {
			return a.W > b.W
		}
		return a.ID < b.ID
	})
	var failed []*design.Cell
	for i, cd := range illegal {
		if i%cancelCheckEvery == 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, err
			}
		}
		repairCell(d, occ, res, cd.c, cd.x, d.RowY(cd.row), 2, &failed)
	}

	res.RepairFailed = len(failed)
	if len(failed) > 0 {
		res.Rebuilt = true
		if err := mclgerr.FromContext(ctx); err != nil {
			return nil, err
		}
		// Heavy fragmentation: rebuild the whole placement from scratch,
		// starting from the solver's own positions (earlier repair moves
		// may have shuffled cells across rows and destroyed per-row
		// feasibility). First greedily, largest cells first, each at the
		// free position nearest to where the solver put it; if even that
		// fragments, fall back to frontier compaction, which packs rows
		// monotonically and succeeds whenever per-row capacity allows.
		restorePositions(d, original)
		if rebuildNearest(ctx, d, res) > 0 {
			if err := mclgerr.FromContext(ctx); err != nil {
				return nil, err
			}
			restorePositions(d, original)
			res.Unplaced = rebuildFrontier(ctx, d, res, false)
			if res.Unplaced > 0 {
				if err := mclgerr.FromContext(ctx); err != nil {
					return nil, err
				}
				restorePositions(d, original)
				res.Unplaced = rebuildFrontier(ctx, d, res, true)
			}
		}
		if err := mclgerr.FromContext(ctx); err != nil {
			return nil, err
		}
	}
	if res.Unplaced > 0 {
		// Every fallback rung failed for at least one cell. The design still
		// holds those cells at whatever position the last rebuild left them
		// — possibly overlapping — so a nil error here would let callers
		// commit a garbage placement. Surface it as a typed error instead.
		return res, &mclgerr.StageError{
			Stage:  "tetris",
			Err:    mclgerr.ErrUnplacedCells,
			Detail: fmt.Sprintf("%d cells have no candidate site after all fallbacks", res.Unplaced),
		}
	}
	return res, nil
}

type savedPos struct {
	x, y    float64
	flipped bool
}

func savePositions(d *design.Design) []savedPos {
	out := make([]savedPos, len(d.Cells))
	for i, c := range d.Cells {
		out[i] = savedPos{c.X, c.Y, c.Flipped}
	}
	return out
}

func restorePositions(d *design.Design, saved []savedPos) {
	for i, c := range d.Cells {
		if c.Fixed {
			continue
		}
		c.X, c.Y, c.Flipped = saved[i].x, saved[i].y, saved[i].flipped
	}
}

func movableCells(d *design.Design) []*design.Cell {
	out := make([]*design.Cell, 0, len(d.Cells))
	for _, c := range d.Cells {
		if !c.Fixed {
			out = append(out, c)
		}
	}
	return out
}

func blockedOccupancy(d *design.Design) *design.Occupancy {
	occ := design.NewOccupancy(d)
	for _, c := range d.Cells {
		if c.Fixed {
			blockFixed(occ, d, c)
		}
	}
	return occ
}

// rebuildNearest re-places every movable cell from scratch, biggest first,
// each at the nearest free position. Returns the number of unplaced cells.
// A canceled ctx stops the sweep early, counting the rest as unplaced; the
// caller translates that into an ErrCanceled return.
func rebuildNearest(ctx context.Context, d *design.Design, res *Result) int {
	occ := blockedOccupancy(d)
	movable := movableCells(d)
	sort.Slice(movable, func(i, j int) bool {
		a, b := movable[i], movable[j]
		if a.RowSpan != b.RowSpan {
			return a.RowSpan > b.RowSpan
		}
		if a.W != b.W {
			return a.W > b.W
		}
		if a.X != b.X {
			return a.X < b.X
		}
		return a.ID < b.ID
	})
	unplaced := 0
	for i, c := range movable {
		if i%cancelCheckEvery == 0 && mclgerr.FromContext(ctx) != nil {
			unplaced += len(movable) - i
			break
		}
		x, y, ok := design.NearestFree(d, occ, c, c.X, c.Y)
		if !ok {
			unplaced++
			continue
		}
		if err := occ.Place(c, x, y); err != nil {
			unplaced++
			continue
		}
		res.RepairMovedX += math.Abs(x-c.X) / d.SiteW
		res.RepairMovedY += math.Abs(y-c.Y) / d.SiteW
		moveCell(d, c, x, y)
	}
	res.Unplaced = unplaced
	return unplaced
}

// rebuildFrontier is the classic Tetris sweep: cells in x order, each placed
// at max(row frontier, its target x) on the feasible rail-compatible row
// minimizing displacement cost. Rows fill monotonically left to right, so no
// space fragments. With compact == true the target is ignored entirely
// (pure compaction), which succeeds for any instance whose rows have enough
// aggregate capacity. Returns the number of unplaced cells. A canceled ctx
// stops the sweep early, counting the rest as unplaced.
func rebuildFrontier(ctx context.Context, d *design.Design, res *Result, compact bool) int {
	occ := blockedOccupancy(d)
	movable := movableCells(d)
	sort.Slice(movable, func(i, j int) bool {
		a, b := movable[i], movable[j]
		if a.X != b.X {
			return a.X < b.X
		}
		if a.RowSpan != b.RowSpan {
			return a.RowSpan > b.RowSpan
		}
		return a.ID < b.ID
	})
	frontier := make([]int, len(d.Rows)) // next free site index per row
	unplaced := 0
	for i, c := range movable {
		if i%cancelCheckEvery == 0 && mclgerr.FromContext(ctx) != nil {
			unplaced += len(movable) - i
			break
		}
		widthSites := int(math.Ceil(c.W/d.SiteW - 1e-9))
		maxStart := len(d.Rows) - c.RowSpan
		bestRow, bestSite := -1, 0
		bestCost := math.Inf(1)
		for row := 0; row <= maxStart; row++ {
			if !d.RailCompatible(c, row) {
				continue
			}
			s := 0
			for r := row; r < row+c.RowSpan; r++ {
				if frontier[r] > s {
					s = frontier[r]
				}
			}
			if !compact {
				if t := d.SiteIndex(c.X); t > s {
					s = t
				}
			}
			// Skip past fixed blockages.
			for s+widthSites <= d.Rows[row].NumSites &&
				!occ.FreeRun(row, row+c.RowSpan, s, s+widthSites) {
				s++
			}
			if s+widthSites > d.Rows[row].NumSites {
				continue
			}
			x := d.Rows[row].OriginX + float64(s)*d.SiteW
			y := d.RowY(row)
			dx, dy := x-c.X, y-c.Y
			cost := dx*dx + dy*dy
			if compact {
				// Pure compaction must not steal capacity from other rows
				// for a shorter x move, or exactly-fillable instances
				// break: staying in the cell's own row dominates every
				// x cost.
				cost = dy*dy*1e9 + dx*dx
			}
			if cost < bestCost {
				bestCost, bestRow, bestSite = cost, row, s
			}
		}
		if bestRow < 0 {
			unplaced++
			continue
		}
		x := d.Rows[bestRow].OriginX + float64(bestSite)*d.SiteW
		y := d.RowY(bestRow)
		if err := occ.Place(c, x, y); err != nil {
			unplaced++
			continue
		}
		for r := bestRow; r < bestRow+c.RowSpan; r++ {
			frontier[r] = bestSite + widthSites
		}
		res.RepairMovedX += math.Abs(x-c.X) / d.SiteW
		res.RepairMovedY += math.Abs(y-c.Y) / d.SiteW
		moveCell(d, c, x, y)
	}
	return unplaced
}

// repairCell places c at the free position nearest (tx, ty). When no free
// run exists anywhere (heavy fragmentation), it evicts the cells blocking
// the window nearest the target, places c, and recursively re-places the
// evicted cells, bounded by depth. Cells that end up without a position are
// appended to failed.
func repairCell(d *design.Design, occ *design.Occupancy, res *Result, c *design.Cell, tx, ty float64, depth int, failed *[]*design.Cell) {
	if x, y, ok := design.NearestFree(d, occ, c, tx, ty); ok {
		if err := occ.Place(c, x, y); err != nil {
			*failed = append(*failed, c)
			return
		}
		res.RepairMovedX += math.Abs(x-c.X) / d.SiteW
		res.RepairMovedY += math.Abs(y-c.Y) / d.SiteW
		moveCell(d, c, x, y)
		return
	}
	if depth == 0 {
		*failed = append(*failed, c)
		return
	}
	// Eviction fallback: clear the window at the snapped target.
	x := snapClamp(d, c, tx)
	row := d.RowAt(ty + d.RowHeight/2)
	maxStart := len(d.Rows) - c.RowSpan
	if row < 0 {
		row = 0
	}
	if row > maxStart {
		row = maxStart
	}
	// Find the nearest rail-compatible row.
	for delta := 0; delta <= len(d.Rows); delta++ {
		if r := row - delta; r >= 0 && d.RailCompatible(c, r) {
			row = r
			break
		}
		if r := row + delta; r <= maxStart && d.RailCompatible(c, r) {
			row = r
			break
		}
	}
	if !d.RailCompatible(c, row) {
		*failed = append(*failed, c)
		return
	}
	y := d.RowY(row)
	widthSites := int(math.Ceil(c.W/d.SiteW - 1e-9))
	s0 := d.SiteIndex(x)
	if s0+widthSites > d.Rows[row].NumSites {
		s0 = d.Rows[row].NumSites - widthSites
	}
	if s0 < 0 {
		*failed = append(*failed, c)
		return
	}
	evictSet := map[int]bool{}
	for r := row; r < row+c.RowSpan; r++ {
		for s := s0; s < s0+widthSites; s++ {
			if id := occ.OwnerAt(r, s); id >= 0 {
				if d.Cells[id].Fixed {
					*failed = append(*failed, c)
					return // cannot evict fixed cells
				}
				evictSet[id] = true
			}
		}
	}
	var evicted []*design.Cell
	for id := range evictSet {
		ec := d.Cells[id]
		occ.Remove(ec, ec.X, ec.Y)
		evicted = append(evicted, ec)
	}
	sort.Slice(evicted, func(i, j int) bool { return evicted[i].ID < evicted[j].ID })
	xPos := d.Rows[row].OriginX + float64(s0)*d.SiteW
	if err := occ.Place(c, xPos, y); err != nil {
		// Window could not be fully cleared; put the evicted cells back and
		// give up on c.
		for _, ec := range evicted {
			_ = occ.Place(ec, ec.X, ec.Y)
		}
		*failed = append(*failed, c)
		return
	}
	res.RepairMovedX += math.Abs(xPos-c.X) / d.SiteW
	res.RepairMovedY += math.Abs(y-c.Y) / d.SiteW
	moveCell(d, c, xPos, y)
	for _, ec := range evicted {
		repairCell(d, occ, res, ec, ec.X, ec.Y, depth-1, failed)
	}
}

// moveCell updates a cell's position and re-derives the vertical flip for
// odd-span cells.
func moveCell(d *design.Design, c *design.Cell, x, y float64) {
	c.X, c.Y = x, y
	row := d.RowAt(y + d.RowHeight/2)
	if !c.EvenSpan() && row >= 0 {
		c.Flipped = d.Rows[row].Rail != c.BottomRail
	}
}

// countIllegal counts movable cells that, once aligned to their nearest
// placement site, overlap another cell or cross the right chip boundary —
// the quantity Table 1 reports after the MMSIM stage ("aligns each cell to
// the nearest placement site, then checks the cells one by one for their
// legality"). Sub-half-site overlaps that snapping absorbs do not count.
func countIllegal(d *design.Design) int {
	return countIllegalP(d, 1)
}

// countIllegalP is countIllegal with the per-row overlap scans and the
// per-cell boundary checks sharded across workers. Each row's scan collects
// its violations into that row's own list and each boundary chunk writes
// only its own cells' flags, so the stage is race-free; the lists merge
// serially into one distinct-ID count, which makes the result independent of
// scan completion order (a multi-row cell flagged by several rows still
// counts once).
func countIllegalP(d *design.Design, workers int) int {
	const eps = 1e-9
	snap := func(c *design.Cell) float64 {
		return math.Round((c.X-d.Core.Lo.X)/d.SiteW)*d.SiteW + d.Core.Lo.X
	}
	bad := make([]bool, len(d.Cells))
	movable := movableCells(d)
	rows := make([][]*design.Cell, len(d.Rows))
	for _, c := range movable {
		r0 := d.RowAt(c.Y + d.RowHeight/2)
		for k := 0; k < c.RowSpan; k++ {
			if r := r0 + k; r >= 0 && r < len(rows) {
				rows[r] = append(rows[r], c)
			}
		}
	}
	par.For(workers, len(movable), par.GrainCells, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := movable[i]
			if x := snap(c); x+c.W > d.Core.Hi.X+eps || x < d.Core.Lo.X-eps {
				bad[c.ID] = true
			}
		}
	})
	rowBad := make([][]int, len(rows))
	par.For(workers, len(rows), par.GrainRows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			cells := rows[r]
			sort.Slice(cells, func(i, j int) bool {
				xi, xj := snap(cells[i]), snap(cells[j])
				if xi != xj {
					return xi < xj
				}
				return cells[i].ID < cells[j].ID
			})
			for i := 1; i < len(cells); i++ {
				if snap(cells[i]) < snap(cells[i-1])+cells[i-1].W-eps {
					// Attribute the violation to the right cell of the pair,
					// matching the left-to-right check the paper describes.
					rowBad[r] = append(rowBad[r], cells[i].ID)
				}
			}
		}
	})
	for _, ids := range rowBad {
		for _, id := range ids {
			bad[id] = true
		}
	}
	count := 0
	for _, b := range bad {
		if b {
			count++
		}
	}
	return count
}

// shoveLeft pushes cells left, right-to-left within each row, so no cell
// crosses the right boundary and cells in a row do not overlap (up to the
// movement multi-row cells induce in their other rows; a few fixed-point
// passes make those consistent). Cells only move left, ordering is
// preserved, and cells already separated are untouched.
func shoveLeft(d *design.Design) {
	// Row membership including every row a multi-row cell crosses.
	rows := make([][]*design.Cell, len(d.Rows))
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		r0 := d.RowAt(c.Y + d.RowHeight/2)
		for k := 0; k < c.RowSpan; k++ {
			rows[r0+k] = append(rows[r0+k], c)
		}
	}
	for r := range rows {
		sort.Slice(rows[r], func(i, j int) bool {
			if rows[r][i].X != rows[r][j].X {
				return rows[r][i].X > rows[r][j].X // right to left
			}
			return rows[r][i].ID > rows[r][j].ID
		})
	}
	const eps = 1e-9
	for pass := 0; pass < 6; pass++ {
		changed := false
		for r := range rows {
			limit := d.Core.Hi.X
			for _, c := range rows[r] {
				if c.X+c.W > limit+eps {
					c.X = limit - c.W
					changed = true
				}
				if c.X < d.Core.Lo.X {
					// Row genuinely overfull; leave at the left edge and let
					// the repair stage handle the remainder.
					c.X = d.Core.Lo.X
				}
				limit = c.X
			}
			// Multi-row cells may have moved; restore the right-to-left
			// invariant lazily by re-sorting when needed on the next pass.
			sort.Slice(rows[r], func(i, j int) bool {
				if rows[r][i].X != rows[r][j].X {
					return rows[r][i].X > rows[r][j].X
				}
				return rows[r][i].ID > rows[r][j].ID
			})
		}
		if !changed {
			break
		}
	}
}

// snapClamp snaps x to the site grid and clamps so the cell stays inside
// the row.
func snapClamp(d *design.Design, c *design.Cell, x float64) float64 {
	s := d.SnapX(x)
	maxX := d.Core.Hi.X - c.W
	if s > maxX {
		s = d.SnapX(maxX)
		// SnapX rounds; make sure we end up inside.
		if s > maxX {
			s -= d.SiteW
		}
	}
	if s < d.Core.Lo.X {
		s = d.Core.Lo.X
	}
	return s
}

// blockFixed marks every site a fixed cell touches as occupied, whether or
// not the cell is site-aligned.
func blockFixed(occ *design.Occupancy, d *design.Design, c *design.Cell) {
	occ.BlockArea(c.ID, c.X, c.Y, c.W, c.H)
}
