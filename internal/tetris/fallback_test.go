package tetris

import (
	"math/rand"
	"testing"

	"mclg/internal/design"
)

// TestAllocateFrontierFallbackMixedWidths constructs an exact-fill instance
// where the nearest-free rebuild fragments (big cells grab middle runs,
// leaving unusable slivers) so the frontier-compaction fallback must finish
// the job.
func TestAllocateFrontierFallbackMixedWidths(t *testing.T) {
	d := mkDesign(1, 20)
	specs := []struct {
		w float64
		x float64
	}{
		{7, 2}, {7, 2}, {6, 0},
	}
	for _, s := range specs {
		c := d.AddCell("c", s.w, 10, design.VSS)
		c.X, c.Y = s.x, 0
		c.GX, c.GY = s.x, 0
	}
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Fatalf("unplaced = %d on an exactly-fillable row", res.Unplaced)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
	// Exact fill: every site must be used.
	total := 0.0
	for _, c := range d.Cells {
		total += c.W
	}
	if total != 20 {
		t.Fatalf("test setup wrong: total width %g", total)
	}
}

// TestAllocateExactFillRandomizedWidths stresses the full fallback chain on
// random exact-fill rows.
func TestAllocateExactFillRandomizedWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(3)
		capacity := 24
		d := mkDesign(rows, capacity)
		for r := 0; r < rows; r++ {
			remaining := capacity
			for remaining > 0 {
				w := 2 + rng.Intn(6)
				if w > remaining {
					w = remaining
				}
				if remaining-w == 1 { // avoid unusable width-1 leftover
					w = remaining
				}
				if w < 1 {
					w = remaining
				}
				c := d.AddCell("c", float64(w), 10, design.VSS)
				// Random (colliding) positions anywhere in the row.
				c.X = float64(rng.Intn(capacity))
				c.Y = d.RowY(r)
				c.GX, c.GY = c.X, c.Y
				remaining -= w
			}
		}
		res, err := Allocate(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Unplaced != 0 {
			t.Fatalf("trial %d: %d unplaced on exact fill", trial, res.Unplaced)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			t.Fatalf("trial %d: %v", trial, rep)
		}
	}
}

// TestSnapClampRightEdge covers the clamp branch for cells whose real
// position extends beyond the row.
func TestSnapClampRightEdge(t *testing.T) {
	d := mkDesign(1, 20)
	c := d.AddCell("c", 5, 10, design.VSS)
	got := snapClamp(d, c, 18.7) // 18.7 + 5 > 20
	if got != 15 {
		t.Errorf("snapClamp = %g, want 15", got)
	}
	if got := snapClamp(d, c, -3); got != 0 {
		t.Errorf("snapClamp(-3) = %g, want 0", got)
	}
}

// TestAllocateEvictionPath drives repairCell's eviction branch: the illegal
// cell is wide, the grid is fragmented with single-site gaps, so no free
// run exists and blockers at the target window must be evicted.
func TestAllocateEvictionPath(t *testing.T) {
	d := mkDesign(2, 31)
	// Row 0: width-2 blockers at 0,3,6,...,27 (gaps of 1 site) = 10 cells,
	// leaving 10 single-site gaps plus [30,31).
	for i := 0; i < 10; i++ {
		c := d.AddCell("blk", 2, 10, design.VSS)
		c.X, c.Y = float64(3*i), 0
		c.GX, c.GY = c.X, c.Y
	}
	// Row 1: same fragmentation.
	for i := 0; i < 10; i++ {
		c := d.AddCell("blk2", 2, 10, design.VSS)
		c.X, c.Y = float64(3*i), 10
		c.GX, c.GY = c.X, c.Y
	}
	// A width-4 cell with no free run anywhere, overlapping row 0.
	w := d.AddCell("wide", 4, 10, design.VSS)
	w.X, w.Y = 10, 0
	w.GX, w.GY = 10, 0
	res, err := Allocate(d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unplaced != 0 {
		t.Fatalf("unplaced = %d", res.Unplaced)
	}
	if rep := design.CheckLegal(d); !rep.Legal() {
		t.Fatalf("illegal: %v", rep)
	}
}
