package bookshelf

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzReadFiles feeds arbitrary bytes through the three core parsers. The
// invariant: the reader must return either a well-formed design or an
// error — never panic and never produce a design with invalid geometry.
func FuzzReadFiles(f *testing.F) {
	f.Add(
		"UCLA nodes 1.0\nNumNodes : 1\nNumTerminals : 0\n  a 4 10\n",
		"UCLA pl 1.0\na 3 0 : N\n",
		"UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		"UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n\n  a I : 0 0\n  a O : 1 1\n",
	)
	f.Add("", "", "", "")
	f.Add("a -1 -5\n", "a NaN Inf : N\n", "CoreRow\nEnd\n", "NetDegree : 0\n")
	f.Add(
		"UCLA nodes 1.0\n  a 4 10 terminal\n",
		"a 1 2 : N /FIXED\n",
		"CoreRow Horizontal\nCoordinate : 5\nHeight : 10\nSitewidth : 2\nSubrowOrigin : 1 NumSites : 3\nEnd\n",
		"NetDegree : 1 solo\n  a I : 0 0\n",
	)
	// Corrupted variants of a valid file set: non-finite coordinates,
	// duplicate nodes, degenerate site spacing, overlapping rows, and a
	// truncated nets file. Each must be rejected, not crash the reader.
	f.Add(
		"UCLA nodes 1.0\n  a 4 10\n  a 4 10\n",
		"a NaN Inf : N\n",
		"CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  Sitespacing : 0\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		"  a I : 0 0\n",
	)
	f.Add(
		"UCLA nodes 1.0\n  a 0 -10\n",
		"a 1e308 -1e308 : N\n",
		"CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n"+
			"CoreRow Horizontal\n  Coordinate : 5\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		"NetDegree : 2 n\n  a I : NaN 0\n",
	)
	f.Add(
		"UCLA nodes 1.0\n  a 4 10\nNumNodes",
		"a 3 0",
		"CoreRow Horizontal\n  Coordinate : NaN\n  Height : Inf\n  Sitewidth",
		"NetDegree : 2",
	)
	f.Fuzz(func(t *testing.T, nodes, pl, scl, nets string) {
		dir := t.TempDir()
		files := Files{
			Nodes: filepath.Join(dir, "f.nodes"),
			Pl:    filepath.Join(dir, "f.pl"),
			Scl:   filepath.Join(dir, "f.scl"),
			Nets:  filepath.Join(dir, "f.nets"),
		}
		os.WriteFile(files.Nodes, []byte(nodes), 0o644)
		os.WriteFile(files.Pl, []byte(pl), 0o644)
		os.WriteFile(files.Scl, []byte(scl), 0o644)
		os.WriteFile(files.Nets, []byte(nets), 0o644)
		d, err := ReadFiles(files, "fuzz")
		if err != nil {
			return
		}
		if d.RowHeight <= 0 || d.SiteW <= 0 {
			t.Fatalf("accepted degenerate geometry: h=%g sw=%g", d.RowHeight, d.SiteW)
		}
		if len(d.Rows) == 0 {
			t.Fatal("accepted design with no rows")
		}
		for _, n := range d.Nets {
			for _, p := range n.Pins {
				if p.CellID >= len(d.Cells) {
					t.Fatalf("pin references cell %d of %d", p.CellID, len(d.Cells))
				}
			}
		}
	})
}
