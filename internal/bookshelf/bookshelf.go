// Package bookshelf reads and writes the UCLA Bookshelf placement format
// (.aux, .nodes, .pl, .scl, .nets) used by the ISPD contest benchmark
// families the paper evaluates on. It lets real benchmarks be plugged into
// the legalizer and lets the synthetic suite be exported for external
// tools.
//
// Power-rail types are not part of Bookshelf; on load, each row's rail is
// derived from its parity (VSS at the bottom row, alternating upward) and
// each even-row-height cell's designed bottom rail is taken from the rail
// of the row nearest its placed position — the same convention the paper's
// modified contest benchmarks use implicitly.
//
// Bookshelf pin offsets are measured from the cell center; the design model
// uses bottom-left corners, and the conversion happens on read/write.
package bookshelf

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mclg/internal/design"
	"mclg/internal/mclgerr"
)

// Files names the Bookshelf component files. Wts (net weights) is
// optional.
type Files struct {
	Nodes, Nets, Pl, Scl, Wts string
}

// ReadAux parses a .aux file and returns the component file names resolved
// relative to the .aux location.
func ReadAux(path string) (Files, error) {
	f, err := os.Open(path)
	if err != nil {
		return Files{}, err
	}
	defer f.Close()
	dir := filepath.Dir(path)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// "RowBasedPlacement : a.nodes a.nets a.wts a.pl a.scl"
		if i := strings.Index(line, ":"); i >= 0 {
			line = line[i+1:]
		}
		var out Files
		for _, tok := range strings.Fields(line) {
			p := filepath.Join(dir, tok)
			switch filepath.Ext(tok) {
			case ".nodes":
				out.Nodes = p
			case ".nets":
				out.Nets = p
			case ".pl":
				out.Pl = p
			case ".scl":
				out.Scl = p
			case ".wts":
				out.Wts = p
			}
		}
		if out.Nodes == "" || out.Pl == "" || out.Scl == "" {
			return Files{}, fmt.Errorf("bookshelf: %s: missing component files in %q", path, line)
		}
		return out, nil
	}
	if err := sc.Err(); err != nil {
		return Files{}, err
	}
	return Files{}, fmt.Errorf("bookshelf: %s: empty aux file", path)
}

// Read loads a design from an .aux file.
func Read(auxPath string) (*design.Design, error) {
	files, err := ReadAux(auxPath)
	if err != nil {
		return nil, err
	}
	return ReadFiles(files, strings.TrimSuffix(filepath.Base(auxPath), ".aux"))
}

// ReadFiles loads a design from explicit component paths. Nets may be empty.
func ReadFiles(files Files, name string) (*design.Design, error) {
	rows, err := readScl(files.Scl)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("bookshelf: %s: no rows", files.Scl)
	}
	d, err := designFromRows(name, rows)
	if err != nil {
		return nil, err
	}
	nodeIdx, err := readNodes(files.Nodes, d)
	if err != nil {
		return nil, err
	}
	if err := readPl(files.Pl, d, nodeIdx); err != nil {
		return nil, err
	}
	// Derive rails for even-span cells from their placed row.
	for _, c := range d.Cells {
		if c.EvenSpan() {
			r := d.RowAt(c.GY + d.RowHeight/2)
			if r < 0 {
				r = 0
			}
			c.BottomRail = d.Rows[r].Rail
		}
	}
	if files.Nets != "" {
		if err := readNets(files.Nets, d, nodeIdx); err != nil {
			return nil, err
		}
	}
	if files.Wts != "" {
		if err := readWts(files.Wts, d); err != nil {
			return nil, err
		}
	}
	// Final structural gate: anything the per-file parsers could not see in
	// isolation (cells wider than the core, spans taller than the core, …)
	// surfaces here as ErrInvalidInput instead of a downstream panic.
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// readWts parses a net-weights file: lines of "netname weight". Unknown
// nets are ignored (some generators emit node weights in the same file);
// missing weights default to 1.
func readWts(path string, d *design.Design) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // weights are optional
		}
		return err
	}
	defer f.Close()
	byName := make(map[string]int, len(d.Nets))
	for i := range d.Nets {
		byName[d.Nets[i].Name] = i
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		i, ok := byName[fields[0]]
		if !ok {
			continue
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w < 0 || !isFinite(w) {
			return mclgerr.Invalidf("bookshelf: %s:%d: bad weight %q", path, lineNo, fields[1])
		}
		d.Nets[i].Weight = w
	}
	return sc.Err()
}

type sclRow struct {
	y, height, siteW, origin float64
	spacing                  float64 // 0 when the file omits Sitespacing
	numSites                 int
}

func readScl(path string) ([]sclRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rows []sclRow
	var cur *sclRow
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		lower := strings.ToLower(line)
		switch {
		case strings.HasPrefix(lower, "corerow"):
			rows = append(rows, sclRow{siteW: 1})
			cur = &rows[len(rows)-1]
		case lower == "end":
			cur = nil
		default:
			if cur == nil {
				continue // NumRows etc.
			}
			key, vals, ok := splitKV(line)
			if !ok {
				continue
			}
			switch strings.ToLower(key) {
			case "coordinate":
				cur.y, err = strconv.ParseFloat(vals[0], 64)
			case "height":
				cur.height, err = strconv.ParseFloat(vals[0], 64)
			case "sitewidth":
				cur.siteW, err = strconv.ParseFloat(vals[0], 64)
			case "sitespacing":
				cur.spacing, err = strconv.ParseFloat(vals[0], 64)
			case "subroworigin":
				cur.origin, err = strconv.ParseFloat(vals[0], 64)
				if err == nil && len(vals) >= 3 && strings.EqualFold(vals[1], "numsites") {
					cur.numSites, err = strconv.Atoi(vals[2])
				}
			case "numsites":
				cur.numSites, err = strconv.Atoi(vals[0])
			}
			if err != nil {
				return nil, fmt.Errorf("bookshelf: %s:%d: %v", path, lineNo, err)
			}
		}
	}
	return rows, sc.Err()
}

// splitKV splits "Key : v1 Key2 : v2" style lines into the first key and the
// remaining value tokens (with ":" and later keys kept as tokens).
func splitKV(line string) (string, []string, bool) {
	i := strings.Index(line, ":")
	if i < 0 {
		return "", nil, false
	}
	key := strings.TrimSpace(line[:i])
	rest := strings.Fields(strings.ReplaceAll(line[i+1:], ":", " "))
	if key == "" || len(rest) == 0 {
		return "", nil, false
	}
	return key, rest, true
}

func designFromRows(name string, rows []sclRow) (*design.Design, error) {
	h := rows[0].height
	sw := rows[0].siteW
	origin := rows[0].origin
	minY := rows[0].y
	maxSites := 0
	ys := make([]float64, 0, len(rows))
	for i, r := range rows {
		if !isFinite(r.y) || !isFinite(r.height) || !isFinite(r.siteW) || !isFinite(r.origin) {
			return nil, mclgerr.Invalidf("bookshelf: row %d has non-finite geometry", i)
		}
		if math.Abs(r.height-h) > 1e-9 {
			return nil, mclgerr.Invalidf("bookshelf: non-uniform row heights (%g vs %g) unsupported", r.height, h)
		}
		if math.Abs(r.siteW-sw) > 1e-9 {
			return nil, mclgerr.Invalidf("bookshelf: non-uniform site widths unsupported")
		}
		// Sitespacing, when present, is the site pitch. The design model
		// quantizes by the site width, so a non-positive spacing is corrupt
		// and a spacing different from the width (gapped sites) is a layout
		// this pipeline cannot represent.
		if r.spacing != 0 {
			if !isFinite(r.spacing) || r.spacing <= 0 {
				return nil, mclgerr.Invalidf("bookshelf: row %d site spacing %g must be positive", i, r.spacing)
			}
			if math.Abs(r.spacing-r.siteW) > 1e-9 {
				return nil, mclgerr.Invalidf("bookshelf: row %d site spacing %g != site width %g unsupported",
					i, r.spacing, r.siteW)
			}
		}
		ys = append(ys, r.y)
		if r.y < minY {
			minY = r.y
		}
		if r.origin < origin {
			origin = r.origin
		}
		if r.numSites > maxSites {
			maxSites = r.numSites
		}
	}
	if maxSites <= 0 {
		return nil, mclgerr.Invalidf("bookshelf: degenerate row geometry (h=%g, sw=%g, sites=%d)", h, sw, maxSites)
	}
	// The model indexes rows arithmetically from the core origin, so the row
	// coordinates must tile the span exactly: duplicated or overlapping rows
	// would silently alias in the occupancy grid.
	sort.Float64s(ys)
	for i, y := range ys {
		want := minY + float64(i)*h
		if math.Abs(y-want) > 1e-6*h {
			return nil, mclgerr.Invalidf("bookshelf: row at y=%g overlaps or gaps the row stack (want y=%g)", y, want)
		}
	}
	return design.NewDesignChecked(design.Config{
		Name: name, NumRows: len(rows), NumSites: maxSites,
		RowHeight: h, SiteW: sw, OriginX: origin, OriginY: minY,
	})
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func readNodes(path string, d *design.Design) (map[string]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	idx := make(map[string]int)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") ||
			strings.HasPrefix(line, "NumNodes") || strings.HasPrefix(line, "NumTerminals") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, mclgerr.Invalidf("bookshelf: %s:%d: bad node line %q", path, lineNo, line)
		}
		name := fields[0]
		if _, dup := idx[name]; dup {
			return nil, mclgerr.Invalidf("bookshelf: %s:%d: duplicate node %q", path, lineNo, name)
		}
		w, err1 := strconv.ParseFloat(fields[1], 64)
		h, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return nil, mclgerr.Invalidf("bookshelf: %s:%d: bad node dimensions", path, lineNo)
		}
		terminal := len(fields) > 3 && strings.EqualFold(fields[3], "terminal")
		var c *design.Cell
		var err error
		if terminal {
			c, err = d.AddTerminalChecked(name, w, h)
		} else {
			c, err = d.AddCellChecked(name, w, h, design.VSS)
		}
		if err != nil {
			return nil, fmt.Errorf("bookshelf: %s:%d: %w", path, lineNo, err)
		}
		idx[name] = c.ID
	}
	return idx, sc.Err()
}

func readPl(path string, d *design.Design, idx map[string]int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		id, ok := idx[fields[0]]
		if !ok {
			return mclgerr.Invalidf("bookshelf: %s:%d: unknown node %q", path, lineNo, fields[0])
		}
		x, err1 := strconv.ParseFloat(fields[1], 64)
		y, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			return mclgerr.Invalidf("bookshelf: %s:%d: bad coordinates", path, lineNo)
		}
		if !isFinite(x) || !isFinite(y) {
			return mclgerr.Invalidf("bookshelf: %s:%d: non-finite coordinates (%g, %g)", path, lineNo, x, y)
		}
		c := d.Cells[id]
		c.GX, c.GY = x, y
		c.X, c.Y = x, y
		if strings.Contains(line, "/FIXED") {
			c.Fixed = true
		}
	}
	return sc.Err()
}

func readNets(path string, d *design.Design, idx map[string]int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var cur *design.Net
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "UCLA") ||
			strings.HasPrefix(line, "NumNets") || strings.HasPrefix(line, "NumPins") {
			continue
		}
		if strings.HasPrefix(line, "NetDegree") {
			name := fmt.Sprintf("net%d", len(d.Nets))
			if fields := strings.Fields(line); len(fields) >= 4 {
				name = fields[3]
			}
			d.Nets = append(d.Nets, design.Net{Name: name})
			cur = &d.Nets[len(d.Nets)-1]
			continue
		}
		if cur == nil {
			return mclgerr.Invalidf("bookshelf: %s:%d: pin before NetDegree", path, lineNo)
		}
		fields := strings.Fields(line)
		if len(fields) < 1 {
			continue
		}
		id, ok := idx[fields[0]]
		if !ok {
			return mclgerr.Invalidf("bookshelf: %s:%d: unknown node %q", path, lineNo, fields[0])
		}
		// "name I/O : dx dy" with offsets from the cell center.
		dx, dy := 0.0, 0.0
		if len(fields) >= 5 {
			var err1, err2 error
			dx, err1 = strconv.ParseFloat(fields[3], 64)
			dy, err2 = strconv.ParseFloat(fields[4], 64)
			if err1 != nil || err2 != nil {
				return mclgerr.Invalidf("bookshelf: %s:%d: bad pin offsets", path, lineNo)
			}
			if !isFinite(dx) || !isFinite(dy) {
				return mclgerr.Invalidf("bookshelf: %s:%d: non-finite pin offsets (%g, %g)", path, lineNo, dx, dy)
			}
		}
		c := d.Cells[id]
		cur.Pins = append(cur.Pins, design.Pin{
			CellID: id,
			DX:     dx + c.W/2,
			DY:     dy + c.H/2,
		})
	}
	return sc.Err()
}

// Write emits the design as Bookshelf files next to the given .aux path.
func Write(d *design.Design, auxPath string) error {
	base := strings.TrimSuffix(auxPath, ".aux")
	name := filepath.Base(base)
	if err := writeFile(auxPath, func(w io.Writer) error {
		_, err := fmt.Fprintf(w, "RowBasedPlacement : %s.nodes %s.nets %s.wts %s.pl %s.scl\n",
			name, name, name, name, name)
		return err
	}); err != nil {
		return err
	}
	if err := writeFile(base+".nodes", func(w io.Writer) error { return writeNodes(d, w) }); err != nil {
		return err
	}
	if err := writeFile(base+".pl", func(w io.Writer) error { return writePl(d, w) }); err != nil {
		return err
	}
	if err := writeFile(base+".scl", func(w io.Writer) error { return writeScl(d, w) }); err != nil {
		return err
	}
	if err := writeFile(base+".nets", func(w io.Writer) error { return writeNets(d, w) }); err != nil {
		return err
	}
	// Weights file: only nets with non-default weights are listed.
	return writeFile(base+".wts", func(w io.Writer) error {
		if _, err := fmt.Fprintln(w, "UCLA wts 1.0"); err != nil {
			return err
		}
		for i := range d.Nets {
			n := &d.Nets[i]
			if n.Weight != 0 && n.Weight != 1 {
				if _, err := fmt.Fprintf(w, "%s %g\n", n.Name, n.Weight); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

func writeFile(path string, fill func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := fill(w); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeNodes(d *design.Design, w io.Writer) error {
	terminals := 0
	for _, c := range d.Cells {
		if c.Fixed {
			terminals++
		}
	}
	fmt.Fprintln(w, "UCLA nodes 1.0")
	fmt.Fprintf(w, "NumNodes : %d\n", len(d.Cells))
	fmt.Fprintf(w, "NumTerminals : %d\n", terminals)
	for _, c := range d.Cells {
		if c.Fixed {
			fmt.Fprintf(w, "  %s %g %g terminal\n", c.Name, c.W, c.H)
		} else {
			fmt.Fprintf(w, "  %s %g %g\n", c.Name, c.W, c.H)
		}
	}
	return nil
}

func writePl(d *design.Design, w io.Writer) error {
	fmt.Fprintln(w, "UCLA pl 1.0")
	for _, c := range d.Cells {
		suffix := ""
		if c.Fixed {
			suffix = " /FIXED"
		}
		fmt.Fprintf(w, "%s %g %g : N%s\n", c.Name, c.GX, c.GY, suffix)
	}
	return nil
}

func writeScl(d *design.Design, w io.Writer) error {
	fmt.Fprintln(w, "UCLA scl 1.0")
	fmt.Fprintf(w, "NumRows : %d\n", len(d.Rows))
	for _, r := range d.Rows {
		fmt.Fprintln(w, "CoreRow Horizontal")
		fmt.Fprintf(w, "  Coordinate : %g\n", r.Y)
		fmt.Fprintf(w, "  Height : %g\n", r.Height)
		fmt.Fprintf(w, "  Sitewidth : %g\n", r.SiteW)
		fmt.Fprintf(w, "  Sitespacing : %g\n", r.SiteW)
		fmt.Fprintln(w, "  Siteorient : 1")
		fmt.Fprintln(w, "  Sitesymmetry : 1")
		fmt.Fprintf(w, "  SubrowOrigin : %g  NumSites : %d\n", r.OriginX, r.NumSites)
		fmt.Fprintln(w, "End")
	}
	return nil
}

func writeNets(d *design.Design, w io.Writer) error {
	pins := 0
	nets := 0
	for _, n := range d.Nets {
		hasFixedPin := false
		for _, p := range n.Pins {
			if p.CellID < 0 {
				hasFixedPin = true
			}
		}
		if hasFixedPin {
			continue // Bookshelf cannot express free-floating pins
		}
		nets++
		pins += len(n.Pins)
	}
	fmt.Fprintln(w, "UCLA nets 1.0")
	fmt.Fprintf(w, "NumNets : %d\n", nets)
	fmt.Fprintf(w, "NumPins : %d\n", pins)
	for _, n := range d.Nets {
		skip := false
		for _, p := range n.Pins {
			if p.CellID < 0 {
				skip = true
			}
		}
		if skip {
			continue
		}
		fmt.Fprintf(w, "NetDegree : %d %s\n", len(n.Pins), n.Name)
		for _, p := range n.Pins {
			c := d.Cells[p.CellID]
			fmt.Fprintf(w, "  %s I : %g %g\n", c.Name, p.DX-c.W/2, p.DY-c.H/2)
		}
	}
	return nil
}
