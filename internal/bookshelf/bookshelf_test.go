package bookshelf

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

func TestRoundTrip(t *testing.T) {
	d, err := gen.Generate(gen.Spec{
		Name: "rt", SingleCells: 120, DoubleCells: 15, Density: 0.5, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aux := filepath.Join(dir, "rt.aux")
	if err := Write(d, aux); err != nil {
		t.Fatal(err)
	}
	back, err := Read(aux)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(d.Cells) {
		t.Fatalf("cells = %d, want %d", len(back.Cells), len(d.Cells))
	}
	if len(back.Rows) != len(d.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(d.Rows))
	}
	if back.RowHeight != d.RowHeight || back.SiteW != d.SiteW {
		t.Errorf("geometry changed: %g/%g vs %g/%g", back.RowHeight, back.SiteW, d.RowHeight, d.SiteW)
	}
	for i, c := range d.Cells {
		b := back.Cells[i]
		if b.Name != c.Name || b.W != c.W || b.H != c.H || b.RowSpan != c.RowSpan {
			t.Fatalf("cell %d geometry mismatch: %+v vs %+v", i, b, c)
		}
		if math.Abs(b.GX-c.GX) > 1e-9 || math.Abs(b.GY-c.GY) > 1e-9 {
			t.Fatalf("cell %d position mismatch", i)
		}
	}
	if len(back.Nets) != len(d.Nets) {
		t.Fatalf("nets = %d, want %d", len(back.Nets), len(d.Nets))
	}
	// HPWL must be identical after the center/corner offset round trip.
	hA := metrics.HPWLGlobal(d)
	hB := metrics.HPWLGlobal(back)
	if math.Abs(hA-hB) > 1e-6*hA {
		t.Errorf("HPWL changed: %g vs %g", hA, hB)
	}
}

func TestRoundTripRailDerivation(t *testing.T) {
	// Low placement noise: the rail-from-nearest-row convention is only
	// meaningful when cells sit near their intended rows.
	d, err := gen.Generate(gen.Spec{
		Name: "rails", SingleCells: 50, DoubleCells: 30, Density: 0.4, Seed: 53,
		NoiseY: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	aux := filepath.Join(dir, "rails.aux")
	if err := Write(d, aux); err != nil {
		t.Fatal(err)
	}
	back, err := Read(aux)
	if err != nil {
		t.Fatal(err)
	}
	// Rails are derived from the placed row; generated doubles sit at their
	// seed row, so most derived rails match the originals.
	match, total := 0, 0
	for i, c := range d.Cells {
		if !c.EvenSpan() {
			continue
		}
		total++
		if back.Cells[i].BottomRail == c.BottomRail {
			match++
		}
	}
	if total == 0 {
		t.Fatal("no even-span cells")
	}
	if float64(match)/float64(total) < 0.8 {
		t.Errorf("only %d/%d rails rederived", match, total)
	}
}

func TestReadFixedTerminals(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	write("t.aux", "RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n")
	write("t.nodes", `UCLA nodes 1.0
NumNodes : 2
NumTerminals : 1
  a 4 10
  blk 20 10 terminal
`)
	write("t.pl", `UCLA pl 1.0
a 3 0 : N
blk 30 0 : N /FIXED
`)
	write("t.scl", `UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 10
  Sitewidth : 1
  Sitespacing : 1
  Siteorient : 1
  Sitesymmetry : 1
  SubrowOrigin : 0  NumSites : 100
End
CoreRow Horizontal
  Coordinate : 10
  Height : 10
  Sitewidth : 1
  Sitespacing : 1
  Siteorient : 1
  Sitesymmetry : 1
  SubrowOrigin : 0  NumSites : 100
End
`)
	write("t.nets", `UCLA nets 1.0
NumNets : 1
NumPins : 2
NetDegree : 2 n0
  a I : 0 0
  blk O : -5 0
`)
	d, err := Read(filepath.Join(dir, "t.aux"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 2 {
		t.Fatalf("cells = %d", len(d.Cells))
	}
	if !d.Cells[1].Fixed {
		t.Error("terminal not marked fixed")
	}
	if d.Cells[0].Fixed {
		t.Error("movable cell marked fixed")
	}
	if len(d.Nets) != 1 || len(d.Nets[0].Pins) != 2 {
		t.Fatalf("nets parsed wrong: %+v", d.Nets)
	}
	// Pin offsets converted from center to corner: a's pin at center (2, 5).
	p := d.Nets[0].Pins[0]
	if p.DX != 2 || p.DY != 5 {
		t.Errorf("pin offset = (%g, %g), want (2, 5)", p.DX, p.DY)
	}
	if d.Core.W() != 100 || len(d.Rows) != 2 {
		t.Errorf("core parsed wrong: %v, %d rows", d.Core, len(d.Rows))
	}
}

func TestReadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Read(filepath.Join(dir, "missing.aux")); err == nil {
		t.Error("expected error for missing aux")
	}
	bad := filepath.Join(dir, "bad.aux")
	if err := os.WriteFile(bad, []byte("RowBasedPlacement : only.nodes\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bad); err == nil {
		t.Error("expected error for incomplete aux")
	}
	empty := filepath.Join(dir, "empty.aux")
	if err := os.WriteFile(empty, []byte("\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(empty); err == nil {
		t.Error("expected error for empty aux")
	}
}

func TestNonUniformRowsRejected(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "t.aux"), []byte("RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "t.nodes"), []byte("UCLA nodes 1.0\nNumNodes : 0\nNumTerminals : 0\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "t.pl"), []byte("UCLA pl 1.0\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "t.nets"), []byte("UCLA nets 1.0\nNumNets : 0\nNumPins : 0\n"), 0o644)
	os.WriteFile(filepath.Join(dir, "t.scl"), []byte(`UCLA scl 1.0
NumRows : 2
CoreRow Horizontal
  Coordinate : 0
  Height : 10
  Sitewidth : 1
  SubrowOrigin : 0  NumSites : 10
End
CoreRow Horizontal
  Coordinate : 10
  Height : 12
  Sitewidth : 1
  SubrowOrigin : 0  NumSites : 10
End
`), 0o644)
	if _, err := Read(filepath.Join(dir, "t.aux")); err == nil {
		t.Error("expected error for non-uniform row heights")
	}
}

func TestWriteSkipsFixedPinNets(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 20, RowHeight: 10, SiteW: 1})
	d.AddCell("a", 4, 10, design.VSS)
	d.Nets = append(d.Nets,
		design.Net{Name: "pad", Pins: []design.Pin{{CellID: -1, DX: 0, DY: 0}, {CellID: 0}}},
		design.Net{Name: "ok", Pins: []design.Pin{{CellID: 0}, {CellID: 0, DX: 1}}},
	)
	dir := t.TempDir()
	aux := filepath.Join(dir, "w.aux")
	if err := Write(d, aux); err != nil {
		t.Fatal(err)
	}
	back, err := Read(aux)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Nets) != 1 || back.Nets[0].Name != "ok" {
		t.Errorf("nets = %+v, want only 'ok'", back.Nets)
	}
}

func TestNetWeightsRoundTrip(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 2, NumSites: 20, RowHeight: 10, SiteW: 1})
	d.AddCell("a", 4, 10, design.VSS)
	d.AddCell("b", 4, 10, design.VSS)
	d.Nets = append(d.Nets,
		design.Net{Name: "heavy", Weight: 3, Pins: []design.Pin{{CellID: 0}, {CellID: 1}}},
		design.Net{Name: "plain", Pins: []design.Pin{{CellID: 0}, {CellID: 1, DX: 1}}},
	)
	dir := t.TempDir()
	aux := filepath.Join(dir, "w.aux")
	if err := Write(d, aux); err != nil {
		t.Fatal(err)
	}
	back, err := Read(aux)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nets[0].Weight != 3 {
		t.Errorf("heavy net weight = %g, want 3", back.Nets[0].Weight)
	}
	if back.Nets[1].Weight != 0 && back.Nets[1].Weight != 1 {
		t.Errorf("plain net weight = %g, want default", back.Nets[1].Weight)
	}
}

func TestReadWtsBadWeight(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("t.aux", "RowBasedPlacement : t.nodes t.nets t.wts t.pl t.scl\n")
	write("t.nodes", "UCLA nodes 1.0\n  a 4 10\n")
	write("t.pl", "UCLA pl 1.0\na 0 0 : N\n")
	write("t.scl", `UCLA scl 1.0
CoreRow Horizontal
  Coordinate : 0
  Height : 10
  Sitewidth : 1
  SubrowOrigin : 0  NumSites : 20
End
`)
	write("t.nets", "UCLA nets 1.0\nNetDegree : 2 n0\n  a I : 0 0\n  a O : 1 1\n")
	write("t.wts", "UCLA wts 1.0\nn0 -4\n")
	if _, err := Read(filepath.Join(dir, "t.aux")); err == nil {
		t.Error("expected error for negative weight")
	}
}

func TestWeightedHPWL(t *testing.T) {
	d := design.NewDesign(design.Config{NumRows: 1, NumSites: 30, RowHeight: 10, SiteW: 1})
	a := d.AddCell("a", 4, 10, design.VSS)
	b := d.AddCell("b", 4, 10, design.VSS)
	a.X, b.X = 0, 10
	d.Nets = append(d.Nets, design.Net{Name: "n", Weight: 2, Pins: []design.Pin{
		{CellID: 0}, {CellID: 1},
	}})
	if got := metrics.HPWL(d); got != 20 {
		t.Errorf("weighted HPWL = %g, want 20", got)
	}
}
