package bookshelf

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mclg/internal/mclgerr"
)

const (
	goodNodes = "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 0\n  a 4 10\n  b 3 20\n"
	goodPl    = "UCLA pl 1.0\na 3 0 : N\nb 10 0 : N\n"
	goodScl   = "UCLA scl 1.0\nNumRows : 2\n" +
		"CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  Sitespacing : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n" +
		"CoreRow Horizontal\n  Coordinate : 10\n  Height : 10\n  Sitewidth : 1\n  Sitespacing : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n"
	goodNets = "UCLA nets 1.0\nNumNets : 1\nNumPins : 2\nNetDegree : 2 n\n  a I : 0 0\n  b O : 1 1\n"
)

func writeSet(t *testing.T, nodes, pl, scl, nets string) Files {
	t.Helper()
	dir := t.TempDir()
	files := Files{
		Nodes: filepath.Join(dir, "d.nodes"),
		Pl:    filepath.Join(dir, "d.pl"),
		Scl:   filepath.Join(dir, "d.scl"),
		Nets:  filepath.Join(dir, "d.nets"),
	}
	for path, content := range map[string]string{
		files.Nodes: nodes, files.Pl: pl, files.Scl: scl, files.Nets: nets,
	} {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return files
}

func TestReadAcceptsGoodFiles(t *testing.T) {
	d, err := ReadFiles(writeSet(t, goodNodes, goodPl, goodScl, goodNets), "good")
	if err != nil {
		t.Fatalf("ReadFiles: %v", err)
	}
	if len(d.Cells) != 2 || len(d.Rows) != 2 {
		t.Fatalf("got %d cells, %d rows; want 2 and 2", len(d.Cells), len(d.Rows))
	}
}

// Every corruption must be rejected with an ErrInvalidInput-matching error —
// the reader never panics and never hands a malformed design to the solver.
func TestReadRejectsCorruptFiles(t *testing.T) {
	cases := []struct {
		name                 string
		nodes, pl, scl, nets string
	}{
		{name: "nan-x-coordinate", pl: "a NaN 0 : N\nb 10 0 : N\n"},
		{name: "inf-y-coordinate", pl: "a 3 +Inf : N\nb 10 0 : N\n"},
		{name: "unparsable-coordinate", pl: "a zzz 0 : N\nb 10 0 : N\n"},
		{name: "duplicate-node-name", nodes: "a 4 10\na 3 10\n"},
		{name: "zero-width-node", nodes: "a 0 10\nb 3 20\n", pl: goodPl},
		{name: "negative-width-node", nodes: "a -4 10\nb 3 20\n"},
		{name: "nan-height-node", nodes: "a 4 NaN\nb 3 20\n"},
		{name: "height-not-row-multiple", nodes: "a 4 15\nb 3 20\n"},
		{name: "node-wider-than-core", nodes: "a 400 10\nb 3 20\n"},
		{
			name: "zero-site-spacing",
			scl: "CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n" +
				"  Sitespacing : 0\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{
			name: "negative-site-spacing",
			scl: "CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n" +
				"  Sitespacing : -1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{
			name: "gapped-site-spacing",
			scl: "CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n" +
				"  Sitespacing : 2\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{
			name: "overlapping-rows",
			scl: "CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n" +
				"CoreRow Horizontal\n  Coordinate : 5\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{
			name: "duplicate-row-coordinate",
			scl: "CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n" +
				"CoreRow Horizontal\n  Coordinate : 0\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{
			name: "nan-row-coordinate",
			scl:  "CoreRow Horizontal\n  Coordinate : NaN\n  Height : 10\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{
			name: "zero-height-row",
			scl:  "CoreRow Horizontal\n  Coordinate : 0\n  Height : 0\n  Sitewidth : 1\n  SubrowOrigin : 0  NumSites : 50\nEnd\n",
		},
		{name: "nan-pin-offset", nets: "NetDegree : 2 n\n  a I : NaN 0\n  b O : 1 1\n"},
		{name: "truncated-nets-pin-before-degree", nets: "  a I : 0 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nodes, pl, scl, nets := goodNodes, goodPl, goodScl, goodNets
			if tc.nodes != "" {
				nodes = "UCLA nodes 1.0\n" + tc.nodes
			}
			if tc.pl != "" {
				pl = "UCLA pl 1.0\n" + tc.pl
			}
			if tc.scl != "" {
				scl = "UCLA scl 1.0\n" + tc.scl
			}
			if tc.nets != "" {
				nets = "UCLA nets 1.0\n" + tc.nets
			}
			_, err := ReadFiles(writeSet(t, nodes, pl, scl, nets), "corrupt")
			if err == nil {
				t.Fatalf("corruption %q was accepted", tc.name)
			}
			if !errors.Is(err, mclgerr.ErrInvalidInput) {
				t.Fatalf("corruption %q: error %v does not match ErrInvalidInput", tc.name, err)
			}
		})
	}
}

// Terminals (fixed macros) legitimately have heights that are not a whole
// multiple of the row height; only movable cells are held to that rule.
func TestReadAcceptsOddHeightTerminal(t *testing.T) {
	nodes := "UCLA nodes 1.0\n  a 4 10\n  m 8 35 terminal\n"
	pl := "UCLA pl 1.0\na 3 0 : N\nm 20 0 : N /FIXED\n"
	d, err := ReadFiles(writeSet(t, nodes, pl, goodScl, ""), "macro")
	if err != nil {
		t.Fatalf("ReadFiles: %v", err)
	}
	if !d.Cells[1].Fixed {
		t.Fatal("terminal not marked fixed")
	}
}
