package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// randCSR builds a random rows×cols matrix with roughly density·rows·cols
// stored entries (duplicates summed by the Builder).
func randCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewBuilder(rows, cols)
	nnz := int(density * float64(rows) * float64(cols))
	for k := 0; k < nnz; k++ {
		b.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	// Guarantee a stored diagonal so tests can probe hits and misses.
	for i := 0; i < rows && i < cols; i++ {
		b.Add(i, i, 1+rng.Float64())
	}
	return b.Build()
}

func TestAtBinarySearchMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randCSR(rng, rows, cols, rng.Float64())
		d := m.Dense()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got := m.At(i, j); got != d[i][j] {
					t.Fatalf("trial %d: At(%d,%d) = %g, dense %g", trial, i, j, got, d[i][j])
				}
			}
		}
	}
	// Wide row: the binary search must find every column in a long run.
	b := NewBuilder(1, 500)
	for j := 0; j < 500; j += 2 {
		b.Add(0, j, float64(j)+1)
	}
	m := b.Build()
	for j := 0; j < 500; j++ {
		want := 0.0
		if j%2 == 0 {
			want = float64(j) + 1
		}
		if got := m.At(0, j); got != want {
			t.Fatalf("wide row: At(0,%d) = %g, want %g", j, got, want)
		}
	}
}

func TestRowChunksInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 25; trial++ {
		rows := rng.Intn(200)
		m := randCSR(rng, rows+1, 50, 0.2) // rows+1: never a 0-row Builder
		target := 1 + rng.Intn(64)
		ch := m.RowChunks(target)
		if ch.Bounds[0] != 0 || ch.Bounds[len(ch.Bounds)-1] != m.Rows {
			t.Fatalf("bounds %v do not cover [0, %d]", ch.Bounds, m.Rows)
		}
		for c := 0; c < ch.NumChunks(); c++ {
			lo, hi := ch.Bounds[c], ch.Bounds[c+1]
			if hi <= lo {
				t.Fatalf("empty chunk %d: [%d, %d)", c, lo, hi)
			}
			if ch.NnzStart[c] != m.RowPtr[lo] {
				t.Fatalf("chunk %d: NnzStart %d, RowPtr[%d] = %d", c, ch.NnzStart[c], lo, m.RowPtr[lo])
			}
			// A chunk only exceeds the target because its last row tipped it
			// over (single rows can be wider than the target).
			nnz := m.RowPtr[hi] - m.RowPtr[lo]
			prev := m.RowPtr[hi-1] - m.RowPtr[lo]
			if nnz >= target && hi-lo > 1 && prev >= target {
				t.Fatalf("chunk %d: %d rows with %d nnz should have split before row %d", c, hi-lo, nnz, hi-1)
			}
		}
		// Pure function of structure: a second derivation is identical.
		ch2 := m.RowChunks(target)
		if len(ch2.Bounds) != len(ch.Bounds) {
			t.Fatalf("non-deterministic chunking: %v vs %v", ch.Bounds, ch2.Bounds)
		}
		for i := range ch.Bounds {
			if ch.Bounds[i] != ch2.Bounds[i] {
				t.Fatalf("non-deterministic chunking at %d: %v vs %v", i, ch.Bounds, ch2.Bounds)
			}
		}
	}
}

// unfusedModulusRHS is the pre-fusion sweep sequence the fused kernel must
// reproduce bit for bit.
func unfusedModulusRHS(m *CSR, rhs, omega, a, q []float64, gamma float64) {
	if omega == nil {
		Axpy(rhs, 1, a)
	} else {
		for i := range rhs {
			rhs[i] += omega[i] * a[i]
		}
	}
	m.AddMulVec(rhs, a, -1)
	Axpy(rhs, -gamma, q)
}

func TestFusedModulusRHSMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(300)
		m := randCSR(rng, n, n, 0.05)
		base := randVec(rng, n)
		a := randVec(rng, n)
		q := randVec(rng, n)
		gamma := []float64{1, 0.5, 2}[trial%3]
		var omega []float64
		if trial%2 == 1 {
			omega = randVec(rng, n)
		}
		want := append([]float64(nil), base...)
		unfusedModulusRHS(m, want, omega, a, q, gamma)
		ch := m.RowChunks(16) // small target so parallel runs see many chunks
		for _, w := range workerCounts {
			got := append([]float64(nil), base...)
			m.FusedModulusRHS(w, ch, got, omega, a, q, gamma)
			sameBits(t, "FusedModulusRHS", got, want)
		}
	}
}

func TestFusedZUpdateMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(9000)
		s := randVec(rng, n)
		zPrev := randVec(rng, n)
		gamma := []float64{1, 0.5, 2}[trial%3]
		if trial == 7 {
			s[n/2] = math.Inf(1) // the finiteness verdict must flip
		}
		// Unfused reference: separate abs, transform, finite, and norm passes.
		wantAbs := make([]float64, n)
		Abs(wantAbs, s)
		wantZ := make([]float64, n)
		for i := range wantZ {
			wantZ[i] = (math.Abs(s[i]) + s[i]) / gamma
		}
		wantOK := true
		for _, v := range wantZ {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				wantOK = false
			}
		}
		wantDz := DiffNormInf(wantZ, zPrev)
		for _, w := range workerCounts {
			z := make([]float64, n)
			absS := make([]float64, n)
			dz, ok := FusedZUpdate(w, z, zPrev, s, absS, gamma)
			sameBits(t, "FusedZUpdate z", z, wantZ)
			sameBits(t, "FusedZUpdate absS", absS, wantAbs)
			if ok != wantOK {
				t.Fatalf("workers %d: finite = %v, want %v", w, ok, wantOK)
			}
			if wantOK && math.Float64bits(dz) != math.Float64bits(wantDz) {
				t.Fatalf("workers %d: dz = %x, want %x", w, math.Float64bits(dz), math.Float64bits(wantDz))
			}
		}
	}
}

func TestScaleAddMulVecMatchesUnfused(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		rows, cols := 1+rng.Intn(200), 1+rng.Intn(200)
		m := randCSR(rng, rows, cols, 0.1)
		base := randVec(rng, rows)
		x := randVec(rng, cols)
		alpha := rng.NormFloat64()
		coef := []float64{1, 1, -0.5, 3}[trial%4]
		// coef == 1 must match copy-then-AddMulVec exactly; coef != 1 the
		// scaled form.
		want := make([]float64, rows)
		if coef == 1 {
			copy(want, base)
		} else {
			for i := range want {
				want[i] = coef * base[i]
			}
		}
		m.AddMulVec(want, x, alpha)
		got := make([]float64, rows)
		m.ScaleAddMulVec(got, base, coef, x, alpha)
		sameBits(t, "ScaleAddMulVec", got, want)
		for _, w := range workerCounts {
			clear(got)
			m.ScaleAddMulVecP(w, got, base, coef, x, alpha)
			sameBits(t, "ScaleAddMulVecP", got, want)
		}
	}
}
