// Package sparse provides the hand-rolled sparse linear algebra used by the
// MMSIM legalizer: CSR matrices built from coordinate triplets, sparse
// matrix-vector products, tridiagonal systems solved by the Thomas
// algorithm, and a power iteration for estimating dominant eigenvalues.
//
// The Go ecosystem has no stdlib sparse support, so everything here is
// implemented from scratch against plain float64 slices. All operations are
// deterministic and allocation-conscious: the solver hot loop reuses
// caller-provided destination slices.
package sparse

import (
	"fmt"
	"sort"
)

// CSR is a sparse matrix in compressed sparse row format.
//
// Row i occupies ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]],
// with column indices strictly increasing within each row.
type CSR struct {
	Rows, Cols int
	RowPtr     []int
	ColIdx     []int
	Val        []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// At returns the entry at (i, j), or 0 if it is not stored. Column indices
// are strictly increasing within a row, so the lookup is a hand-rolled
// binary search over the row's column slice — O(log nnz(row i)) with no
// closure dispatch, cheap enough for the audit and debug paths that call it
// per entry.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.ColIdx[mid] < j {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < m.RowPtr[i+1] && m.ColIdx[lo] == j {
		return m.Val[lo]
	}
	return 0
}

// MulVec computes dst = m * x. dst must have length m.Rows and must not
// alias x.
func (m *CSR) MulVec(dst, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic(fmt.Sprintf("sparse: MulVec dimension mismatch: m is %dx%d, dst %d, x %d",
			m.Rows, m.Cols, len(dst), len(x)))
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		cols := m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
		vals := m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
		vals = vals[:len(cols)]
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ * x without materializing the transpose.
// dst must have length m.Cols and must not alias x.
func (m *CSR) MulVecT(dst, x []float64) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic(fmt.Sprintf("sparse: MulVecT dimension mismatch: m is %dx%d, dst %d, x %d",
			m.Rows, m.Cols, len(dst), len(x)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dst[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// AddMulVec computes dst += alpha * m * x.
func (m *CSR) AddMulVec(dst, x []float64, alpha float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: AddMulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		cols := m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
		vals := m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
		vals = vals[:len(cols)]
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		dst[i] += alpha * s
	}
}

// AddMulVecT computes dst += alpha * mᵀ * x.
func (m *CSR) AddMulVecT(dst, x []float64, alpha float64) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic("sparse: AddMulVecT dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		xi := alpha * x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			dst[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
}

// Transpose returns a new CSR holding mᵀ.
func (m *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   m.Cols,
		Cols:   m.Rows,
		RowPtr: make([]int, m.Cols+1),
		ColIdx: make([]int, m.NNZ()),
		Val:    make([]float64, m.NNZ()),
	}
	// Count entries per column of m.
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.Cols; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, m.Cols)
	copy(next, t.RowPtr[:m.Cols])
	for i := 0; i < m.Rows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// Dense expands the matrix into a row-major dense [][]float64.
// Intended for tests on small instances only.
func (m *CSR) Dense() [][]float64 {
	d := make([][]float64, m.Rows)
	for i := range d {
		d[i] = make([]float64, m.Cols)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			d[i][m.ColIdx[k]] = m.Val[k]
		}
	}
	return d
}

// Validate checks the structural invariants of the CSR layout and returns a
// descriptive error on the first violation.
func (m *CSR) Validate() error {
	if len(m.RowPtr) != m.Rows+1 {
		return fmt.Errorf("sparse: RowPtr length %d, want %d", len(m.RowPtr), m.Rows+1)
	}
	if m.RowPtr[0] != 0 {
		return fmt.Errorf("sparse: RowPtr[0] = %d, want 0", m.RowPtr[0])
	}
	if m.RowPtr[m.Rows] != len(m.Val) || len(m.ColIdx) != len(m.Val) {
		return fmt.Errorf("sparse: nnz mismatch: RowPtr end %d, ColIdx %d, Val %d",
			m.RowPtr[m.Rows], len(m.ColIdx), len(m.Val))
	}
	for i := 0; i < m.Rows; i++ {
		if m.RowPtr[i] > m.RowPtr[i+1] {
			return fmt.Errorf("sparse: RowPtr not monotone at row %d", i)
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j < 0 || j >= m.Cols {
				return fmt.Errorf("sparse: column %d out of range in row %d", j, i)
			}
			if k > m.RowPtr[i] && m.ColIdx[k-1] >= j {
				return fmt.Errorf("sparse: columns not strictly increasing in row %d", i)
			}
		}
	}
	return nil
}

// Builder accumulates coordinate-format (row, col, value) triplets and
// compiles them into a CSR matrix. Duplicate coordinates are summed, which
// makes assembling finite-difference-style constraint matrices convenient.
type Builder struct {
	rows, cols int
	ri, ci     []int
	v          []float64
}

// NewBuilder returns a builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: cols}
}

// Add records value v at (i, j). Duplicates accumulate.
func (b *Builder) Add(i, j int, v float64) {
	if i < 0 || i >= b.rows || j < 0 || j >= b.cols {
		panic(fmt.Sprintf("sparse: Builder.Add(%d, %d) out of %dx%d", i, j, b.rows, b.cols))
	}
	b.ri = append(b.ri, i)
	b.ci = append(b.ci, j)
	b.v = append(b.v, v)
}

// Build compiles the accumulated triplets into a CSR matrix.
// Entries that sum to exactly zero are kept (structural zeros), keeping the
// sparsity pattern predictable for callers that built it deliberately.
func (b *Builder) Build() *CSR {
	m := &CSR{Rows: b.rows, Cols: b.cols, RowPtr: make([]int, b.rows+1)}
	// Counting sort by row.
	for _, i := range b.ri {
		m.RowPtr[i+1]++
	}
	for i := 0; i < b.rows; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	nnz := len(b.v)
	colTmp := make([]int, nnz)
	valTmp := make([]float64, nnz)
	next := make([]int, b.rows)
	copy(next, m.RowPtr[:b.rows])
	for k := range b.v {
		i := b.ri[k]
		p := next[i]
		colTmp[p] = b.ci[k]
		valTmp[p] = b.v[k]
		next[i]++
	}
	// Sort within each row and merge duplicates.
	m.ColIdx = make([]int, 0, nnz)
	m.Val = make([]float64, 0, nnz)
	for i := 0; i < b.rows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		row := rowSorter{colTmp[lo:hi], valTmp[lo:hi]}
		sort.Sort(row)
		start := len(m.ColIdx)
		for k := 0; k < len(row.col); k++ {
			if n := len(m.ColIdx); n > start && m.ColIdx[n-1] == row.col[k] {
				m.Val[n-1] += row.val[k]
			} else {
				m.ColIdx = append(m.ColIdx, row.col[k])
				m.Val = append(m.Val, row.val[k])
			}
		}
		m.RowPtr[i] = start
	}
	m.RowPtr[b.rows] = len(m.ColIdx)
	return m
}

type rowSorter struct {
	col []int
	val []float64
}

func (r rowSorter) Len() int           { return len(r.col) }
func (r rowSorter) Less(i, j int) bool { return r.col[i] < r.col[j] }
func (r rowSorter) Swap(i, j int) {
	r.col[i], r.col[j] = r.col[j], r.col[i]
	r.val[i], r.val[j] = r.val[j], r.val[i]
}

// Identity returns the n x n identity matrix in CSR form.
func Identity(n int) *CSR {
	m := &CSR{Rows: n, Cols: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}
