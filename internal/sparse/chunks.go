package sparse

// RowChunks is a precomputed partition of a CSR matrix's row range into
// contiguous chunks of roughly equal stored-entry count. The fused MMSIM
// kernels iterate chunks instead of re-deriving row ranges per call, and the
// boundaries depend only on the matrix structure and the target — never on
// the worker count — so any parallel schedule over the chunks reproduces the
// serial result bit for bit (each chunk owns a disjoint row range).
type RowChunks struct {
	// Bounds holds chunk boundaries in row space: chunk c covers rows
	// [Bounds[c], Bounds[c+1]). Bounds[0] == 0 and Bounds[len-1] == Rows.
	Bounds []int
	// NnzStart[c] == RowPtr[Bounds[c]]: where chunk c's entries begin, so
	// kernels can slice Val/ColIdx without touching RowPtr again.
	NnzStart []int
}

// NumChunks returns how many row chunks the partition holds.
func (rc *RowChunks) NumChunks() int { return len(rc.Bounds) - 1 }

// DefaultChunkNNZ is the stored-entry budget per fused-kernel chunk. With the
// legalizer's LCP matrix at ~4 entries/row this yields chunks of a few
// hundred rows — comparable work per chunk to par.GrainRows on the SpMV
// paths, small enough to load-balance, large enough to amortize dispatch.
const DefaultChunkNNZ = 2048

// RowChunks partitions the matrix's rows greedily: each chunk accumulates
// rows until its stored-entry count reaches targetNNZ (minimum one row per
// chunk, so pathological dense rows still make progress). targetNNZ <= 0
// selects DefaultChunkNNZ. The result is a pure function of (RowPtr,
// targetNNZ).
func (m *CSR) RowChunks(targetNNZ int) *RowChunks {
	if targetNNZ <= 0 {
		targetNNZ = DefaultChunkNNZ
	}
	rc := &RowChunks{Bounds: []int{0}, NnzStart: []int{0}}
	if m.Rows == 0 {
		return rc
	}
	// Pre-size for the expected chunk count.
	est := m.NNZ()/targetNNZ + 2
	rc.Bounds = make([]int, 1, est)
	rc.NnzStart = make([]int, 1, est)
	start := 0
	for start < m.Rows {
		end := start + 1
		for end < m.Rows && m.RowPtr[end+1]-m.RowPtr[start] <= targetNNZ {
			end++
		}
		rc.Bounds = append(rc.Bounds, end)
		rc.NnzStart = append(rc.NnzStart, m.RowPtr[end])
		start = end
	}
	return rc
}
