package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("empty Dot = %g, want 0", got)
	}
}

func TestNorms(t *testing.T) {
	v := []float64{3, -4}
	if got := Norm2(v); got != 5 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := NormInf(v); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
	if Norm2(nil) != 0 || NormInf(nil) != 0 {
		t.Error("empty norms should be 0")
	}
}

func TestNorm2NoOverflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	v := []float64{big, big}
	got := Norm2(v)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("Norm2 overflowed: %g", got)
	}
	want := big * math.Sqrt2
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Norm2 = %g, want %g", got, want)
	}
}

func TestAxpyScaleAbs(t *testing.T) {
	dst := []float64{1, 2}
	Axpy(dst, 3, []float64{10, 20})
	if dst[0] != 31 || dst[1] != 62 {
		t.Errorf("Axpy = %v", dst)
	}
	Scale(dst, 0.5)
	if dst[0] != 15.5 || dst[1] != 31 {
		t.Errorf("Scale = %v", dst)
	}
	out := make([]float64, 2)
	Abs(out, []float64{-3, 4})
	if out[0] != 3 || out[1] != 4 {
		t.Errorf("Abs = %v", out)
	}
}

func TestDiffNormInf(t *testing.T) {
	if got := DiffNormInf([]float64{1, 5, 2}, []float64{1, 2, 4}); got != 3 {
		t.Errorf("DiffNormInf = %g, want 3", got)
	}
}

func TestPowerIterationDiagonal(t *testing.T) {
	// Operator diag(1, 2, 7, 3): dominant eigenvalue 7.
	d := []float64{1, 2, 7, 3}
	got := PowerIteration(4, func(dst, src []float64) {
		for i := range d {
			dst[i] = d[i] * src[i]
		}
	}, 500, 1e-12)
	if math.Abs(got-7) > 1e-6 {
		t.Errorf("PowerIteration = %g, want 7", got)
	}
}

func TestPowerIterationSymmetricRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	// Random symmetric PSD matrix A = GᵀG.
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
		for j := range g[i] {
			g[i][j] = rng.NormFloat64()
		}
	}
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			for k := 0; k < n; k++ {
				a[i][j] += g[k][i] * g[k][j]
			}
		}
	}
	apply := func(dst, src []float64) {
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += a[i][j] * src[j]
			}
			dst[i] = s
		}
	}
	est := PowerIteration(n, apply, 2000, 1e-13)
	// Reference: crude eigenvalue via many more iterations of the same
	// method with a different metric — verify the residual ||Av - λv||.
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	w := make([]float64, n)
	for it := 0; it < 5000; it++ {
		apply(w, v)
		nrm := Norm2(w)
		for i := range v {
			v[i] = w[i] / nrm
		}
	}
	apply(w, v)
	ref := Dot(v, w)
	if math.Abs(est-ref) > 1e-6*math.Max(1, ref) {
		t.Errorf("PowerIteration = %g, reference %g", est, ref)
	}
}

func TestPowerIterationZeroOperator(t *testing.T) {
	got := PowerIteration(3, func(dst, src []float64) {
		for i := range dst {
			dst[i] = 0
		}
	}, 100, 1e-10)
	if got != 0 {
		t.Errorf("zero operator eigenvalue = %g, want 0", got)
	}
	if got := PowerIteration(0, nil, 10, 1e-10); got != 0 {
		t.Errorf("n=0 eigenvalue = %g, want 0", got)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= ||a|| ||b||.
func TestCauchySchwarz(t *testing.T) {
	f := func(a, b [6]float64) bool {
		av, bv := a[:], b[:]
		for _, x := range append(append([]float64{}, av...), bv...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true // skip degenerate inputs
			}
		}
		lhs := math.Abs(Dot(av, bv))
		rhs := Norm2(av) * Norm2(bv)
		return lhs <= rhs*(1+1e-9)+1e-300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
