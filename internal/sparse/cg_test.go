package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func applyDense(a [][]float64) func(dst, src []float64) {
	return func(dst, src []float64) {
		for i := range a {
			s := 0.0
			for j, v := range a[i] {
				s += v * src[j]
			}
			dst[i] = s
		}
	}
}

func TestCGIdentity(t *testing.T) {
	n := 5
	id := make([][]float64, n)
	b := make([]float64, n)
	for i := range id {
		id[i] = make([]float64, n)
		id[i][i] = 1
		b[i] = float64(i + 1)
	}
	x := make([]float64, n)
	iters, err := CG(applyDense(id), b, x, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-8 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
	if iters > 2 {
		t.Errorf("identity took %d iterations", iters)
	}
}

func TestCGRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(30)
		// A = GᵀG + I.
		g := make([][]float64, n)
		for i := range g {
			g[i] = make([]float64, n)
			for j := range g[i] {
				g[i][j] = rng.NormFloat64()
			}
		}
		a := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			for j := range a[i] {
				for k := 0; k < n; k++ {
					a[i][j] += g[k][i] * g[k][j]
				}
			}
			a[i][i]++
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, n)
		applyDense(a)(b, want)
		x := make([]float64, n)
		if _, err := CG(applyDense(a), b, x, CGOptions{Tol: 1e-12, MaxIter: 20 * n}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(x[i]-want[i]) > 1e-5*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, x[i], want[i])
			}
		}
	}
}

func TestCGJacobiPreconditioner(t *testing.T) {
	// Badly scaled diagonal system: Jacobi makes it converge in one step.
	n := 20
	a := make([][]float64, n)
	diag := make([]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		diag[i] = math.Pow(10, float64(i%8))
		a[i][i] = diag[i]
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	x := make([]float64, n)
	iters, err := CG(applyDense(a), b, x, CGOptions{
		Precond: func(dst, src []float64) {
			for i := range dst {
				dst[i] = src[i] / diag[i]
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if iters > 3 {
		t.Errorf("preconditioned diagonal solve took %d iterations", iters)
	}
	for i := range b {
		if math.Abs(x[i]-b[i]/diag[i]) > 1e-8 {
			t.Errorf("x[%d] wrong", i)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	x := []float64{3, 4}
	id := [][]float64{{1, 0}, {0, 1}}
	if _, err := CG(applyDense(id), []float64{0, 0}, x, CGOptions{}); err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Errorf("zero rhs should zero x, got %v", x)
	}
}

func TestCGNonConvergence(t *testing.T) {
	// One iteration cap on a system needing more.
	rng := rand.New(rand.NewSource(93))
	n := 20
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a[i][j] += v
			a[j][i] += v
		}
		a[i][i] += 20
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := make([]float64, n)
	if _, err := CG(applyDense(a), b, x, CGOptions{Tol: 1e-14, MaxIter: 1}); err == nil {
		t.Error("expected ErrNotConverged")
	}
}

func TestCGNotPositiveDefinite(t *testing.T) {
	a := [][]float64{{-1, 0}, {0, -1}}
	x := make([]float64, 2)
	if _, err := CG(applyDense(a), []float64{1, 1}, x, CGOptions{}); err == nil {
		t.Error("expected error for negative definite operator")
	}
}
