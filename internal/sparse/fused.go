package sparse

import (
	"math"

	"mclg/internal/par"
)

// Fused MMSIM iteration kernels. Each replaces a sequence of full-length
// vector sweeps with a single pass that performs the same per-element
// floating-point operations in the same order — only the intermediate
// stores/loads between the formerly separate sweeps disappear, which changes
// no rounding. The parallel variants shard over a precomputed RowChunks
// partition (or fixed par.GrainVec chunks for elementwise passes); every
// per-element computation is independent and the reductions combine
// fixed-chunk partials with max/AND, so any worker count is bit-identical to
// the serial scan. As elsewhere in this package, workers <= 1 dispatches to a
// closure-free serial path so the MMSIM steady state stays allocation-free.

// FusedModulusRHS folds the modulus right-hand-side update
//
//	rhs[i] = ((rhs[i] + Ω_i·a[i]) − (A·a)_i) + (−γ)·q[i]
//
// into one pass over A's rows: on entry rhs holds N·s (from ApplyN), a holds
// |s|, and on exit rhs is the full MMSIM right-hand side N·s + (Ω−A)|s| − γq.
// omega == nil means Ω = I (the paper's choice), adding a[i] directly. ch may
// be nil for the serial path; the parallel path requires it.
func (m *CSR) FusedModulusRHS(workers int, ch *RowChunks, rhs, omega, a, q []float64, gamma float64) {
	n := m.Rows
	if len(rhs) != n || len(a) != m.Cols || len(q) != n {
		panic("sparse: FusedModulusRHS dimension mismatch")
	}
	ng := -gamma
	if par.Resolve(workers) <= 1 || ch == nil || ch.NumChunks() <= 1 {
		m.fusedModulusRHSRange(0, n, rhs, omega, a, q, ng)
		return
	}
	bounds := ch.Bounds
	par.For(workers, ch.NumChunks(), 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			m.fusedModulusRHSRange(bounds[c], bounds[c+1], rhs, omega, a, q, ng)
		}
	})
}

func (m *CSR) fusedModulusRHSRange(lo, hi int, rhs, omega, a, q []float64, negGamma float64) {
	rowPtr := m.RowPtr
	if omega == nil {
		for i := lo; i < hi; i++ {
			s := 0.0
			cols := m.ColIdx[rowPtr[i]:rowPtr[i+1]]
			vals := m.Val[rowPtr[i]:rowPtr[i+1]]
			// Reslicing to len(cols) lets the compiler drop the bounds
			// check on vals[k] inside the dot product.
			vals = vals[:len(cols)]
			for k, c := range cols {
				s += vals[k] * a[c]
			}
			rhs[i] = (rhs[i] + a[i]) + (-1)*s + negGamma*q[i]
		}
		return
	}
	for i := lo; i < hi; i++ {
		s := 0.0
		cols := m.ColIdx[rowPtr[i]:rowPtr[i+1]]
		vals := m.Val[rowPtr[i]:rowPtr[i+1]]
		vals = vals[:len(cols)]
		for k, c := range cols {
			s += vals[k] * a[c]
		}
		rhs[i] = (rhs[i] + omega[i]*a[i]) + (-1)*s + negGamma*q[i]
	}
}

// FusedZUpdate folds the MMSIM tail sweeps into one elementwise pass: the
// modulus back-transform z[i] = (|s[i]| + s[i])/γ, the |s| capture the NEXT
// iteration's rhs pass needs (written to absS), the finiteness scan, and the
// ‖z − zPrev‖∞ step norm. Returns (dz, finite). The per-element arithmetic is
// exactly the unfused sequence's: the abs/divide order is unchanged and the
// max/AND reductions are combination-order-insensitive, so dz and the finite
// verdict are bit-identical to running the four sweeps separately, at any
// worker count.
func FusedZUpdate(workers int, z, zPrev, s, absS []float64, gamma float64) (float64, bool) {
	n := len(s)
	if len(z) != n || len(zPrev) != n || len(absS) != n {
		panic("sparse: FusedZUpdate length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		return fusedZUpdateRange(0, n, z, zPrev, s, absS, gamma)
	}
	return par.ReduceMaxOK(workers, n, par.GrainVec, func(lo, hi int) (float64, bool) {
		return fusedZUpdateRange(lo, hi, z, zPrev, s, absS, gamma)
	})
}

func fusedZUpdateRange(lo, hi int, z, zPrev, s, absS []float64, gamma float64) (float64, bool) {
	dz := 0.0
	finite := true
	if gamma == 1 {
		// γ = 1 (the default): x/1 is the bit-exact identity for every
		// float64, so the division is skipped entirely.
		for i := lo; i < hi; i++ {
			si := s[i]
			ai := math.Abs(si)
			absS[i] = ai
			zi := ai + si
			z[i] = zi
			// zi−zi is 0 exactly when zi is finite (NaN/±Inf yield NaN),
			// the same verdict as IsNaN∨IsInf with one subtraction.
			if zi-zi != 0 {
				finite = false
			}
			if d := math.Abs(zi - zPrev[i]); d > dz {
				dz = d
			}
		}
		return dz, finite
	}
	for i := lo; i < hi; i++ {
		si := s[i]
		ai := math.Abs(si)
		absS[i] = ai
		zi := (ai + si) / gamma
		z[i] = zi
		if zi-zi != 0 {
			finite = false
		}
		if d := math.Abs(zi - zPrev[i]); d > dz {
			dz = d
		}
	}
	return dz, finite
}

// ScaleAddMulVec computes dst[i] = coef·base[i] + alpha·(m·x)_i in one row
// pass, fusing the scale/copy sweep that would otherwise precede an
// AddMulVec. coef == 1 short-circuits the multiply so the base passes
// through bit-exactly (matching a copy followed by AddMulVec). dst must not
// alias x; base may alias dst.
func (m *CSR) ScaleAddMulVec(dst, base []float64, coef float64, x []float64, alpha float64) {
	if len(dst) != m.Rows || len(base) != m.Rows || len(x) != m.Cols {
		panic("sparse: ScaleAddMulVec dimension mismatch")
	}
	m.scaleAddMulVecRange(0, m.Rows, dst, base, coef, x, alpha)
}

// ScaleAddMulVecP is ScaleAddMulVec sharded by row.
func (m *CSR) ScaleAddMulVecP(workers int, dst, base []float64, coef float64, x []float64, alpha float64) {
	if len(dst) != m.Rows || len(base) != m.Rows || len(x) != m.Cols {
		panic("sparse: ScaleAddMulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 {
		m.scaleAddMulVecRange(0, m.Rows, dst, base, coef, x, alpha)
		return
	}
	par.For(workers, m.Rows, par.GrainRows, func(lo, hi int) {
		m.scaleAddMulVecRange(lo, hi, dst, base, coef, x, alpha)
	})
}

func (m *CSR) scaleAddMulVecRange(lo, hi int, dst, base []float64, coef float64, x []float64, alpha float64) {
	rowPtr := m.RowPtr
	if coef == 1 {
		for i := lo; i < hi; i++ {
			s := 0.0
			cols := m.ColIdx[rowPtr[i]:rowPtr[i+1]]
			vals := m.Val[rowPtr[i]:rowPtr[i+1]]
			// Reslicing to len(cols) lets the compiler drop the bounds
			// check on vals[k] inside the dot product.
			vals = vals[:len(cols)]
			for k, c := range cols {
				s += vals[k] * x[c]
			}
			dst[i] = base[i] + alpha*s
		}
		return
	}
	for i := lo; i < hi; i++ {
		s := 0.0
		cols := m.ColIdx[rowPtr[i]:rowPtr[i+1]]
		vals := m.Val[rowPtr[i]:rowPtr[i+1]]
		vals = vals[:len(cols)]
		for k, c := range cols {
			s += vals[k] * x[c]
		}
		dst[i] = coef*base[i] + alpha*s
	}
}
