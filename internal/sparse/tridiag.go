package sparse

import "fmt"

// Tridiag is a tridiagonal matrix stored by its three diagonals.
// Sub[i] is the entry (i, i-1) for i >= 1 (Sub[0] is unused and kept zero),
// Diag[i] is (i, i), and Sup[i] is (i, i+1) for i < n-1.
type Tridiag struct {
	Sub, Diag, Sup []float64
}

// NewTridiag allocates a zero tridiagonal matrix of order n.
func NewTridiag(n int) *Tridiag {
	return &Tridiag{
		Sub:  make([]float64, n),
		Diag: make([]float64, n),
		Sup:  make([]float64, n),
	}
}

// N returns the order of the matrix.
func (t *Tridiag) N() int { return len(t.Diag) }

// MulVec computes dst = t * x.
func (t *Tridiag) MulVec(dst, x []float64) {
	n := t.N()
	if len(dst) != n || len(x) != n {
		panic("sparse: Tridiag.MulVec dimension mismatch")
	}
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = t.Diag[0] * x[0]
		return
	}
	// Boundary rows handled outside the loop so the interior is branch-free;
	// the per-element add order matches the branched form exactly.
	diag, sub, sup := t.Diag, t.Sub, t.Sup
	dst[0] = diag[0]*x[0] + sup[0]*x[1]
	for i := 1; i < n-1; i++ {
		dst[i] = diag[i]*x[i] + sub[i]*x[i-1] + sup[i]*x[i+1]
	}
	dst[n-1] = diag[n-1]*x[n-1] + sub[n-1]*x[n-2]
}

// Shifted returns t + shift*I as a new matrix.
func (t *Tridiag) Shifted(shift float64) *Tridiag {
	n := t.N()
	out := NewTridiag(n)
	copy(out.Sub, t.Sub)
	copy(out.Sup, t.Sup)
	for i := 0; i < n; i++ {
		out.Diag[i] = t.Diag[i] + shift
	}
	return out
}

// Scaled returns alpha*t as a new matrix.
func (t *Tridiag) Scaled(alpha float64) *Tridiag {
	n := t.N()
	out := NewTridiag(n)
	for i := 0; i < n; i++ {
		out.Sub[i] = alpha * t.Sub[i]
		out.Diag[i] = alpha * t.Diag[i]
		out.Sup[i] = alpha * t.Sup[i]
	}
	return out
}

// TridiagSolver carries the LU factorization of a tridiagonal matrix
// (the Thomas algorithm without pivoting) so that repeated solves against
// the same matrix — the MMSIM inner loop — cost only the back/forward
// substitution.
type TridiagSolver struct {
	n    int
	low  []float64 // multipliers l_i = a_i / d_{i-1}
	diag []float64 // pivots after elimination
	sup  []float64 // unchanged superdiagonal
	// segments holds the independent-block boundaries (see Segments),
	// computed eagerly by Factor so concurrent SolveP calls never mutate
	// solver state.
	segments []int
}

// Factor computes the LU factorization of t. It returns an error if a pivot
// underflows, which for the diagonally dominant matrices produced by the
// MMSIM splitting indicates a malformed input.
func (t *Tridiag) Factor() (*TridiagSolver, error) {
	n := t.N()
	s := &TridiagSolver{
		n:    n,
		low:  make([]float64, n),
		diag: make([]float64, n),
		sup:  t.Sup,
	}
	if n == 0 {
		return s, nil
	}
	s.diag[0] = t.Diag[0]
	for i := 1; i < n; i++ {
		piv := s.diag[i-1]
		if piv == 0 {
			return nil, fmt.Errorf("sparse: zero pivot at row %d during tridiagonal factorization", i-1)
		}
		s.low[i] = t.Sub[i] / piv
		s.diag[i] = t.Diag[i] - s.low[i]*t.Sup[i-1]
	}
	if s.diag[n-1] == 0 {
		return nil, fmt.Errorf("sparse: zero pivot at row %d during tridiagonal factorization", n-1)
	}
	s.Segments()
	return s, nil
}

// Solve computes dst such that t*dst = rhs. dst and rhs may alias.
func (s *TridiagSolver) Solve(dst, rhs []float64) {
	n := s.n
	if len(dst) != n || len(rhs) != n {
		panic("sparse: TridiagSolver.Solve dimension mismatch")
	}
	if n == 0 {
		return
	}
	// Forward elimination: dst holds the modified rhs.
	low, diag, sup := s.low, s.diag, s.sup
	dst[0] = rhs[0]
	for i := 1; i < n; i++ {
		dst[i] = rhs[i] - low[i]*dst[i-1]
	}
	// Back substitution.
	dst[n-1] /= diag[n-1]
	for i := n - 2; i >= 0; i-- {
		dst[i] = (dst[i] - sup[i]*dst[i+1]) / diag[i]
	}
}

// SolveTridiag is a one-shot convenience wrapper: factor and solve.
func SolveTridiag(t *Tridiag, rhs []float64) ([]float64, error) {
	s, err := t.Factor()
	if err != nil {
		return nil, err
	}
	dst := make([]float64, len(rhs))
	s.Solve(dst, rhs)
	return dst, nil
}

// GramTridiag computes tridiag(B * W * Bᵀ) where W = diag(w). This is the
// tridiagonal Schur-complement approximation for the single-row-height case
// (where H = Q = I, so W = H⁻¹ = I). Only the entries (i, i-1), (i, i), and
// (i, i+1) of the Gram matrix are computed, each as a sparse dot product
// between consecutive rows of B.
//
// If w is nil it is treated as all ones.
func GramTridiag(b *CSR, w []float64) *Tridiag {
	m := b.Rows
	t := NewTridiag(m)
	for i := 0; i < m; i++ {
		t.Diag[i] = weightedRowDot(b, i, i, w)
		if i > 0 {
			v := weightedRowDot(b, i, i-1, w)
			t.Sub[i] = v
			t.Sup[i-1] = v
		}
	}
	return t
}

// weightedRowDot returns Σ_k B[i,k] * w[k] * B[j,k] using a two-pointer merge
// over the sorted column indices of rows i and j.
func weightedRowDot(b *CSR, i, j int, w []float64) float64 {
	pi, ei := b.RowPtr[i], b.RowPtr[i+1]
	pj, ej := b.RowPtr[j], b.RowPtr[j+1]
	s := 0.0
	for pi < ei && pj < ej {
		ci, cj := b.ColIdx[pi], b.ColIdx[pj]
		switch {
		case ci == cj:
			wi := 1.0
			if w != nil {
				wi = w[ci]
			}
			s += b.Val[pi] * wi * b.Val[pj]
			pi++
			pj++
		case ci < cj:
			pi++
		default:
			pj++
		}
	}
	return s
}

// GramTridiagApply computes tridiag(B * W * Bᵀ) for a general symmetric
// positive definite W given only the action y = W * (sparse column vector).
// applyW receives the sparse vector as (indices, values) and must append the
// result's nonzero (index, value) pairs via the emit callback. The sparse
// vectors here are rows of B, which have at most a handful of nonzeros, and
// W⁻¹ in the legalizer couples only subcells of one multi-row cell, so each
// application is O(cell height).
func GramTridiagApply(b *CSR, applyW func(idx []int, val []float64, emit func(int, float64))) *Tridiag {
	m := b.Rows
	t := NewTridiag(m)
	// Scatter workspace for W*bᵢ.
	dense := make(map[int]float64, 8)
	for i := 0; i < m; i++ {
		lo, hi := b.RowPtr[i], b.RowPtr[i+1]
		clear(dense)
		applyW(b.ColIdx[lo:hi], b.Val[lo:hi], func(j int, v float64) {
			dense[j] += v
		})
		t.Diag[i] = sparseDotMap(b, i, dense)
		if i > 0 {
			v := sparseDotMap(b, i-1, dense)
			t.Sub[i] = v
			t.Sup[i-1] = v
		}
		if i < m-1 {
			// (i, i+1) will be filled when processing row i+1; nothing to do.
			_ = i
		}
	}
	return t
}

func sparseDotMap(b *CSR, row int, v map[int]float64) float64 {
	s := 0.0
	for k := b.RowPtr[row]; k < b.RowPtr[row+1]; k++ {
		if x, ok := v[b.ColIdx[k]]; ok {
			s += b.Val[k] * x
		}
	}
	return s
}
