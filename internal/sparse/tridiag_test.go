package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func TestTridiagMulVec(t *testing.T) {
	// [2 1 0]
	// [1 2 1]
	// [0 1 2]
	tr := NewTridiag(3)
	tr.Diag[0], tr.Diag[1], tr.Diag[2] = 2, 2, 2
	tr.Sub[1], tr.Sub[2] = 1, 1
	tr.Sup[0], tr.Sup[1] = 1, 1
	dst := make([]float64, 3)
	tr.MulVec(dst, []float64{1, 2, 3})
	want := []float64{4, 8, 8}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestTridiagSolveKnown(t *testing.T) {
	tr := NewTridiag(3)
	tr.Diag[0], tr.Diag[1], tr.Diag[2] = 2, 2, 2
	tr.Sub[1], tr.Sub[2] = 1, 1
	tr.Sup[0], tr.Sup[1] = 1, 1
	x, err := SolveTridiag(tr, []float64{4, 8, 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestTridiagSolveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(40)
		tr := NewTridiag(n)
		for i := 0; i < n; i++ {
			// Strictly diagonally dominant: guaranteed nonsingular.
			tr.Diag[i] = 4 + rng.Float64()
			if i > 0 {
				tr.Sub[i] = rng.NormFloat64()
			}
			if i < n-1 {
				tr.Sup[i] = rng.NormFloat64()
			}
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		tr.MulVec(rhs, want)
		got, err := SolveTridiag(tr, rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestTridiagSolveInPlaceAlias(t *testing.T) {
	tr := NewTridiag(4)
	for i := 0; i < 4; i++ {
		tr.Diag[i] = 3
	}
	tr.Sub[1], tr.Sub[2], tr.Sub[3] = -1, -1, -1
	tr.Sup[0], tr.Sup[1], tr.Sup[2] = -1, -1, -1
	s, err := tr.Factor()
	if err != nil {
		t.Fatal(err)
	}
	rhs := []float64{1, 2, 3, 4}
	ref := make([]float64, 4)
	s.Solve(ref, rhs)
	// Aliased solve must give the same answer.
	s.Solve(rhs, rhs)
	for i := range ref {
		if rhs[i] != ref[i] {
			t.Errorf("aliased solve differs at %d: %g vs %g", i, rhs[i], ref[i])
		}
	}
}

func TestTridiagZeroPivot(t *testing.T) {
	tr := NewTridiag(2)
	tr.Diag[0] = 0
	tr.Diag[1] = 1
	if _, err := tr.Factor(); err == nil {
		t.Error("expected error for singular leading pivot")
	}
}

func TestTridiagEmptyAndSingle(t *testing.T) {
	empty := NewTridiag(0)
	if _, err := SolveTridiag(empty, nil); err != nil {
		t.Fatalf("empty solve: %v", err)
	}
	one := NewTridiag(1)
	one.Diag[0] = 4
	x, err := SolveTridiag(one, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 2 {
		t.Errorf("1x1 solve = %g, want 2", x[0])
	}
}

func TestShiftedScaled(t *testing.T) {
	tr := NewTridiag(2)
	tr.Diag[0], tr.Diag[1] = 1, 2
	tr.Sup[0], tr.Sub[1] = 3, 4
	sh := tr.Shifted(10)
	if sh.Diag[0] != 11 || sh.Diag[1] != 12 || sh.Sup[0] != 3 || sh.Sub[1] != 4 {
		t.Errorf("Shifted wrong: %+v", sh)
	}
	sc := tr.Scaled(2)
	if sc.Diag[0] != 2 || sc.Sup[0] != 6 || sc.Sub[1] != 8 {
		t.Errorf("Scaled wrong: %+v", sc)
	}
	// Originals untouched.
	if tr.Diag[0] != 1 || tr.Sup[0] != 3 {
		t.Error("Shifted/Scaled mutated receiver")
	}
}

func TestGramTridiagMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(10)
		b := randomCSR(rng, rows, cols, 0.4)
		w := make([]float64, cols)
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
		tr := GramTridiag(b, w)
		d := b.Dense()
		gram := func(i, j int) float64 {
			s := 0.0
			for k := 0; k < cols; k++ {
				s += d[i][k] * w[k] * d[j][k]
			}
			return s
		}
		for i := 0; i < rows; i++ {
			if math.Abs(tr.Diag[i]-gram(i, i)) > 1e-12 {
				t.Fatalf("diag[%d] = %g, want %g", i, tr.Diag[i], gram(i, i))
			}
			if i > 0 && math.Abs(tr.Sub[i]-gram(i, i-1)) > 1e-12 {
				t.Fatalf("sub[%d] = %g, want %g", i, tr.Sub[i], gram(i, i-1))
			}
			if i < rows-1 && math.Abs(tr.Sup[i]-gram(i, i+1)) > 1e-12 {
				t.Fatalf("sup[%d] = %g, want %g", i, tr.Sup[i], gram(i, i+1))
			}
		}
	}
}

func TestGramTridiagNilWeights(t *testing.T) {
	b := NewBuilder(2, 3)
	b.Add(0, 0, -1)
	b.Add(0, 1, 1)
	b.Add(1, 1, -1)
	b.Add(1, 2, 1)
	m := b.Build()
	tr := GramTridiag(m, nil)
	// Row dot products: diag = 2, off-diag = -1 (shared column 1).
	if tr.Diag[0] != 2 || tr.Diag[1] != 2 {
		t.Errorf("diag = %v, want [2 2]", tr.Diag)
	}
	if tr.Sub[1] != -1 || tr.Sup[0] != -1 {
		t.Errorf("off-diag = %g/%g, want -1", tr.Sub[1], tr.Sup[0])
	}
}

func TestGramTridiagApplyMatchesDiagonalCase(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(10)
		b := randomCSR(rng, rows, cols, 0.4)
		w := make([]float64, cols)
		for i := range w {
			w[i] = 0.5 + rng.Float64()
		}
		want := GramTridiag(b, w)
		got := GramTridiagApply(b, func(idx []int, val []float64, emit func(int, float64)) {
			for k, j := range idx {
				emit(j, w[j]*val[k])
			}
		})
		for i := 0; i < rows; i++ {
			if math.Abs(got.Diag[i]-want.Diag[i]) > 1e-12 ||
				math.Abs(got.Sub[i]-want.Sub[i]) > 1e-12 ||
				math.Abs(got.Sup[i]-want.Sup[i]) > 1e-12 {
				t.Fatalf("trial %d row %d: apply version differs", trial, i)
			}
		}
	}
}
