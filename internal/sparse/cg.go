package sparse

import (
	"errors"
	"fmt"
)

// ErrNotConverged is returned by CG when the iteration limit is reached
// before the residual target.
var ErrNotConverged = errors.New("sparse: CG did not converge")

// CGOptions controls the conjugate gradient solver.
type CGOptions struct {
	Tol     float64 // relative residual target ‖r‖/‖b‖; 0 means 1e-8
	MaxIter int     // 0 means 10·n
	// Precond, if non-nil, applies a symmetric positive definite
	// preconditioner: dst = M⁻¹ src (e.g. Jacobi).
	Precond func(dst, src []float64)
}

// CG solves A x = b for a symmetric positive definite operator given by
// apply (dst = A·src), starting from x (which is updated in place and also
// returned). It returns the iteration count.
//
// The global placer uses CG on its quadratic-wirelength Laplacians; the
// solver is generic so tests can drive it with any SPD operator.
func CG(apply func(dst, src []float64), b, x []float64, opts CGOptions) (int, error) {
	n := len(b)
	if len(x) != n {
		return 0, fmt.Errorf("sparse: CG dimension mismatch: b %d, x %d", len(b), n)
	}
	if opts.Tol == 0 {
		opts.Tol = 1e-8
	}
	if opts.MaxIter == 0 {
		opts.MaxIter = 10 * (n + 1)
	}
	r := make([]float64, n)
	apply(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	z := make([]float64, n)
	applyPrecond := func() {
		if opts.Precond != nil {
			opts.Precond(z, r)
		} else {
			copy(z, r)
		}
	}
	applyPrecond()
	p := append([]float64(nil), z...)
	ap := make([]float64, n)

	bNorm := Norm2(b)
	if bNorm == 0 {
		for i := range x {
			x[i] = 0
		}
		return 0, nil
	}
	rz := Dot(r, z)
	for k := 0; k < opts.MaxIter; k++ {
		if Norm2(r) <= opts.Tol*bNorm {
			return k, nil
		}
		apply(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return k, fmt.Errorf("sparse: CG operator not positive definite (pᵀAp = %g)", pap)
		}
		alpha := rz / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		applyPrecond()
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if Norm2(r) <= opts.Tol*bNorm {
		return opts.MaxIter, nil
	}
	return opts.MaxIter, ErrNotConverged
}
