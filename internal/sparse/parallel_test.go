package sparse

import (
	"math"
	"math/rand"
	"testing"
)

// workerCounts are the parallelism levels every determinism test sweeps.
var workerCounts = []int{1, 2, 8}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(8)-4))
	}
	return v
}

func sameBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: %g (%x) vs %g (%x)", name, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

func TestAbsPMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := randVec(rng, 9001)
	want := make([]float64, len(x))
	Abs(want, x)
	for _, w := range workerCounts {
		got := make([]float64, len(x))
		AbsP(w, got, x)
		sameBits(t, "AbsP", got, want)
	}
}

func TestAxpyPMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randVec(rng, 9001)
	base := randVec(rng, 9001)
	want := append([]float64(nil), base...)
	Axpy(want, 0.37, x)
	for _, w := range workerCounts {
		got := append([]float64(nil), base...)
		AxpyP(w, got, 0.37, x)
		sameBits(t, "AxpyP", got, want)
	}
}

func TestDiffNormInfPMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randVec(rng, 12345)
	b := randVec(rng, 12345)
	want := DiffNormInf(a, b)
	for _, w := range workerCounts {
		if got := DiffNormInfP(w, a, b); got != want {
			t.Fatalf("workers=%d: %g vs %g", w, got, want)
		}
	}
}

func TestMulVecPMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := randomCSR(rng, 700, 500, 0.02)
	x := randVec(rng, 500)
	want := make([]float64, 700)
	m.MulVec(want, x)
	for _, w := range workerCounts {
		got := make([]float64, 700)
		m.MulVecP(w, got, x)
		sameBits(t, "MulVecP", got, want)
	}
}

func TestAddMulVecPMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	m := randomCSR(rng, 700, 500, 0.02)
	x := randVec(rng, 500)
	base := randVec(rng, 700)
	want := append([]float64(nil), base...)
	m.AddMulVec(want, x, -1.5)
	for _, w := range workerCounts {
		got := append([]float64(nil), base...)
		m.AddMulVecP(w, got, x, -1.5)
		sameBits(t, "AddMulVecP", got, want)
	}
}

// segmentedTridiag builds a block tridiagonal matrix out of nBlocks
// independent diagonally dominant blocks — the shape of the legalizer's
// Schur matrix D, whose blocks are the per-placement-row constraint chains.
func segmentedTridiag(rng *rand.Rand, nBlocks, blockLen int) *Tridiag {
	n := nBlocks * blockLen
	tr := NewTridiag(n)
	for i := 0; i < n; i++ {
		tr.Diag[i] = 4 + rng.Float64()
		if i%blockLen != 0 && i > 0 {
			v := rng.NormFloat64()
			tr.Sub[i] = v
			tr.Sup[i-1] = v
		}
	}
	return tr
}

func TestTridiagSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	tr := segmentedTridiag(rng, 7, 13)
	s, err := tr.Factor()
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments()
	if len(segs) != 8 {
		t.Fatalf("got %d boundaries (%v), want 8", len(segs), segs)
	}
	for b := 0; b < 7; b++ {
		if segs[b] != b*13 {
			t.Fatalf("segment %d starts at %d, want %d", b, segs[b], b*13)
		}
	}
	if segs[7] != 7*13 {
		t.Fatalf("terminator %d, want %d", segs[7], 7*13)
	}
}

func TestTridiagSolvePMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, shape := range []struct{ blocks, blockLen int }{
		{1, 50}, {40, 25}, {100, 1}, {3, 400},
	} {
		tr := segmentedTridiag(rng, shape.blocks, shape.blockLen)
		s, err := tr.Factor()
		if err != nil {
			t.Fatal(err)
		}
		n := shape.blocks * shape.blockLen
		rhs := randVec(rng, n)
		want := make([]float64, n)
		s.Solve(want, rhs)
		for _, w := range workerCounts {
			got := make([]float64, n)
			s.SolveP(w, got, rhs)
			sameBits(t, "SolveP", got, want)
		}
		// Aliased dst/rhs must work too.
		for _, w := range workerCounts {
			got := append([]float64(nil), rhs...)
			s.SolveP(w, got, got)
			sameBits(t, "SolveP aliased", got, want)
		}
	}
}

func TestTridiagSolvePIsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	tr := segmentedTridiag(rng, 12, 31)
	s, err := tr.Factor()
	if err != nil {
		t.Fatal(err)
	}
	n := 12 * 31
	rhs := randVec(rng, n)
	x := make([]float64, n)
	s.SolveP(8, x, rhs)
	check := make([]float64, n)
	tr.MulVec(check, x)
	for i := range check {
		if math.Abs(check[i]-rhs[i]) > 1e-8*(1+math.Abs(rhs[i])) {
			t.Fatalf("residual too large at %d: %g vs %g", i, check[i], rhs[i])
		}
	}
}
