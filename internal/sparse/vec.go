package sparse

import "math"

// Vector helpers shared by the iterative solvers. They operate on plain
// []float64 and panic on length mismatches, mirroring the conventions of the
// CSR methods.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for the large intermediate values
	// a badly scaled benchmark could produce.
	maxAbs := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		r := x / maxAbs
		s += r * r
	}
	return maxAbs * math.Sqrt(s)
}

// NormInf returns the maximum absolute entry of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes dst[i] += alpha * x[i].
func Axpy(dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Axpy length mismatch")
	}
	for i := range dst {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every entry of v by alpha in place.
func Scale(v []float64, alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Abs computes dst[i] = |x[i]|.
func Abs(dst, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Abs length mismatch")
	}
	for i := range x {
		dst[i] = math.Abs(x[i])
	}
}

// DiffNormInf returns max_i |a[i] - b[i]|.
func DiffNormInf(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: DiffNormInf length mismatch")
	}
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// PowerIteration estimates the dominant eigenvalue (in magnitude) of the
// linear operator apply: dst = Op(src), acting on R^n. It is used to bound
// θ* for the MMSIM convergence condition (Theorem 2). The starting vector is
// deterministic (a fixed quasi-random pattern) so results are reproducible.
//
// Returns the Rayleigh-quotient estimate after at most maxIter iterations or
// once successive estimates differ by less than tol. For n == 0 it returns 0.
func PowerIteration(n int, apply func(dst, src []float64), maxIter int, tol float64) float64 {
	if n == 0 {
		return 0
	}
	v := make([]float64, n)
	w := make([]float64, n)
	// Deterministic, non-degenerate start: a simple Weyl sequence.
	seedFrac := 0.0
	for i := range v {
		seedFrac += 0.6180339887498949
		seedFrac -= math.Floor(seedFrac)
		v[i] = seedFrac - 0.5
	}
	if nrm := Norm2(v); nrm > 0 {
		Scale(v, 1/nrm)
	}
	est := 0.0
	for it := 0; it < maxIter; it++ {
		apply(w, v)
		lambda := Dot(v, w) // Rayleigh quotient against the unit vector v
		nrm := Norm2(w)
		if nrm == 0 {
			return 0
		}
		for i := range v {
			v[i] = w[i] / nrm
		}
		if it > 0 && math.Abs(lambda-est) <= tol*math.Max(1, math.Abs(lambda)) {
			return lambda
		}
		est = lambda
	}
	return est
}
