package sparse

import (
	"math"

	"mclg/internal/par"
)

// Parallel kernel variants. Every *P function computes bit-identical results
// to its serial counterpart at any worker count: elementwise kernels and
// per-row SpMV write disjoint output slots with unchanged per-slot
// arithmetic, and the norm reductions combine fixed-grain chunk partials
// with max, which is order-insensitive. workers follows the package-wide
// knob convention: 0 = GOMAXPROCS, 1 = serial.
//
// When workers resolves to 1 every *P kernel dispatches to its serial twin
// before any closure literal is evaluated. The closures passed to par.For
// capture loop state and therefore escape to the heap even when par.For
// runs them inline; the early exit keeps the serial hot path (the MMSIM
// steady state under Workers=1) allocation-free.

// AbsP is Abs sharded over fixed chunks.
func AbsP(workers int, dst, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Abs length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		Abs(dst, x)
		return
	}
	par.For(workers, len(x), par.GrainVec, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = math.Abs(x[i])
		}
	})
}

// AxpyP is Axpy sharded over fixed chunks.
func AxpyP(workers int, dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Axpy length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		Axpy(dst, alpha, x)
		return
	}
	par.For(workers, len(dst), par.GrainVec, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += alpha * x[i]
		}
	})
}

// DiffNormInfP is DiffNormInf as an ordered max-reduction over fixed chunks.
func DiffNormInfP(workers int, a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: DiffNormInf length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		return DiffNormInf(a, b)
	}
	return par.ReduceMax(workers, len(a), par.GrainVec, func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			if d := math.Abs(a[i] - b[i]); d > m {
				m = d
			}
		}
		return m
	})
}

// MulVecP is MulVec sharded by row: each output row is one dot product
// computed in the same entry order as the serial kernel.
func (m *CSR) MulVecP(workers int, dst, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: MulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 {
		m.MulVec(dst, x)
		return
	}
	par.For(workers, m.Rows, par.GrainRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				s += m.Val[k] * x[m.ColIdx[k]]
			}
			dst[i] = s
		}
	})
}

// AddMulVecP is AddMulVec sharded by row.
func (m *CSR) AddMulVecP(workers int, dst, x []float64, alpha float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: AddMulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 {
		m.AddMulVec(dst, x, alpha)
		return
	}
	par.For(workers, m.Rows, par.GrainRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				s += m.Val[k] * x[m.ColIdx[k]]
			}
			dst[i] += alpha * s
		}
	})
}

// MulVecP is Tridiag.MulVec sharded by row. Each output row reads its three
// neighboring inputs and writes only its own slot, so any worker count is
// bit-identical to the serial product.
func (t *Tridiag) MulVecP(workers int, dst, x []float64) {
	n := t.N()
	if len(dst) != n || len(x) != n {
		panic("sparse: Tridiag.MulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 {
		t.MulVec(dst, x)
		return
	}
	par.For(workers, n, par.GrainVec, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := t.Diag[i] * x[i]
			if i > 0 {
				s += t.Sub[i] * x[i-1]
			}
			if i < n-1 {
				s += t.Sup[i] * x[i+1]
			}
			dst[i] = s
		}
	})
}

// Segments returns the boundaries of the independent diagonal blocks of the
// factored matrix: positions where both the subdiagonal multiplier and the
// superdiagonal entry vanish, so neither the forward sweep nor the back
// substitution couples across the boundary. The legalizer's Schur tridiagonal
// D has one such block per placement row (consecutive constraints in
// different rows share no variables), which is what makes the solve
// row-shardable. The returned slice holds block start indices plus the
// terminating n.
func (s *TridiagSolver) Segments() []int {
	if s.segments == nil {
		segs := []int{0}
		for i := 1; i < s.n; i++ {
			if s.low[i] == 0 && s.sup[i-1] == 0 {
				segs = append(segs, i)
			}
		}
		s.segments = append(segs, s.n)
	}
	return s.segments
}

// SolveP solves t*dst = rhs like Solve, but shards the independent diagonal
// blocks reported by Segments across workers. Within a block the Thomas
// sweeps are unchanged, and across a zero boundary the serial sweeps are
// no-ops (the eliminated term is 0·x), so the result is identical to Solve
// for any worker count (up to the sign of exact zeros). dst and rhs may
// alias.
func (s *TridiagSolver) SolveP(workers int, dst, rhs []float64) {
	if len(dst) != s.n || len(rhs) != s.n {
		panic("sparse: TridiagSolver.Solve dimension mismatch")
	}
	if s.n == 0 {
		return
	}
	segs := s.Segments()
	nBlocks := len(segs) - 1
	if par.Resolve(workers) <= 1 || nBlocks <= 1 {
		s.Solve(dst, rhs)
		return
	}
	par.For(workers, nBlocks, 8, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			s.solveSegment(segs[b], segs[b+1], dst, rhs)
		}
	})
}

// solveSegment runs the Thomas sweeps on rows [lo, hi), which must form an
// independent block (low[lo] == 0 or lo == 0, sup[hi-1] == 0 or hi == n).
func (s *TridiagSolver) solveSegment(lo, hi int, dst, rhs []float64) {
	dst[lo] = rhs[lo]
	for i := lo + 1; i < hi; i++ {
		dst[i] = rhs[i] - s.low[i]*dst[i-1]
	}
	dst[hi-1] /= s.diag[hi-1]
	for i := hi - 2; i >= lo; i-- {
		dst[i] = (dst[i] - s.sup[i]*dst[i+1]) / s.diag[i]
	}
}
