package sparse

import (
	"math"

	"mclg/internal/par"
)

// Parallel kernel variants. Every *P function computes bit-identical results
// to its serial counterpart at any worker count: elementwise kernels and
// per-row SpMV write disjoint output slots with unchanged per-slot
// arithmetic, and the norm reductions combine fixed-grain chunk partials
// with max, which is order-insensitive. workers follows the package-wide
// knob convention: 0 = GOMAXPROCS, 1 = serial.
//
// When workers resolves to 1 every *P kernel dispatches to its serial twin
// before any closure literal is evaluated. The closures passed to par.For
// capture loop state and therefore escape to the heap even when par.For
// runs them inline; the early exit keeps the serial hot path (the MMSIM
// steady state under Workers=1) allocation-free.

// AbsP is Abs sharded over fixed chunks.
func AbsP(workers int, dst, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Abs length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		Abs(dst, x)
		return
	}
	par.For(workers, len(x), par.GrainVec, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = math.Abs(x[i])
		}
	})
}

// AxpyP is Axpy sharded over fixed chunks.
func AxpyP(workers int, dst []float64, alpha float64, x []float64) {
	if len(dst) != len(x) {
		panic("sparse: Axpy length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		Axpy(dst, alpha, x)
		return
	}
	par.For(workers, len(dst), par.GrainVec, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] += alpha * x[i]
		}
	})
}

// DiffNormInfP is DiffNormInf as an ordered max-reduction over fixed chunks.
func DiffNormInfP(workers int, a, b []float64) float64 {
	if len(a) != len(b) {
		panic("sparse: DiffNormInf length mismatch")
	}
	if par.Resolve(workers) <= 1 {
		return DiffNormInf(a, b)
	}
	return par.ReduceMax(workers, len(a), par.GrainVec, func(lo, hi int) float64 {
		m := 0.0
		for i := lo; i < hi; i++ {
			if d := math.Abs(a[i] - b[i]); d > m {
				m = d
			}
		}
		return m
	})
}

// MulVecP is MulVec sharded by row: each output row is one dot product
// computed in the same entry order as the serial kernel.
func (m *CSR) MulVecP(workers int, dst, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: MulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 {
		m.MulVec(dst, x)
		return
	}
	par.For(workers, m.Rows, par.GrainRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			cols := m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
			vals := m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
			vals = vals[:len(cols)]
			for k, c := range cols {
				s += vals[k] * x[c]
			}
			dst[i] = s
		}
	})
}

// AddMulVecP is AddMulVec sharded by row.
func (m *CSR) AddMulVecP(workers int, dst, x []float64, alpha float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: AddMulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 {
		m.AddMulVec(dst, x, alpha)
		return
	}
	par.For(workers, m.Rows, par.GrainRows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			s := 0.0
			cols := m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]
			vals := m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
			vals = vals[:len(cols)]
			for k, c := range cols {
				s += vals[k] * x[c]
			}
			dst[i] += alpha * s
		}
	})
}

// MulVecP is Tridiag.MulVec sharded by row. Each output row reads its three
// neighboring inputs and writes only its own slot, so any worker count is
// bit-identical to the serial product.
func (t *Tridiag) MulVecP(workers int, dst, x []float64) {
	n := t.N()
	if len(dst) != n || len(x) != n {
		panic("sparse: Tridiag.MulVec dimension mismatch")
	}
	if par.Resolve(workers) <= 1 || n == 1 {
		t.MulVec(dst, x)
		return
	}
	diag, sub, sup := t.Diag, t.Sub, t.Sup
	par.For(workers, n, par.GrainVec, func(lo, hi int) {
		i := lo
		if i == 0 {
			dst[0] = diag[0]*x[0] + sup[0]*x[1]
			i = 1
		}
		end := hi
		if end == n {
			end = n - 1
		}
		for ; i < end; i++ {
			dst[i] = diag[i]*x[i] + sub[i]*x[i-1] + sup[i]*x[i+1]
		}
		if hi == n {
			dst[n-1] = diag[n-1]*x[n-1] + sub[n-1]*x[n-2]
		}
	})
}

// Segments returns the boundaries of the independent diagonal blocks of the
// factored matrix: positions where both the subdiagonal multiplier and the
// superdiagonal entry vanish, so neither the forward sweep nor the back
// substitution couples across the boundary. The legalizer's Schur tridiagonal
// D has one such block per placement row (consecutive constraints in
// different rows share no variables), which is what makes the solve
// row-shardable. The returned slice holds block start indices plus the
// terminating n.
func (s *TridiagSolver) Segments() []int {
	if s.segments == nil {
		segs := []int{0}
		for i := 1; i < s.n; i++ {
			if s.low[i] == 0 && s.sup[i-1] == 0 {
				segs = append(segs, i)
			}
		}
		s.segments = append(segs, s.n)
	}
	return s.segments
}

// SolveP solves t*dst = rhs like Solve, but shards the independent diagonal
// blocks reported by Segments across workers. Within a block the Thomas
// sweeps are unchanged, and across a zero boundary the serial sweeps are
// no-ops (the eliminated term is 0·x), so the result is identical to Solve
// for any worker count (up to the sign of exact zeros). dst and rhs may
// alias.
func (s *TridiagSolver) SolveP(workers int, dst, rhs []float64) {
	if len(dst) != s.n || len(rhs) != s.n {
		panic("sparse: TridiagSolver.Solve dimension mismatch")
	}
	if s.n == 0 {
		return
	}
	segs := s.Segments()
	nBlocks := len(segs) - 1
	if nBlocks <= 1 {
		s.Solve(dst, rhs)
		return
	}
	if par.Resolve(workers) <= 1 {
		s.solveSegmentsInterleaved(segs, dst, rhs)
		return
	}
	par.For(workers, nBlocks, 8, func(lo, hi int) {
		for b := lo; b < hi; b++ {
			s.solveSegment(segs[b], segs[b+1], dst, rhs)
		}
	})
}

// solveSegmentsInterleaved runs the Thomas sweeps on independent blocks four
// at a time, interleaving their recurrences so the four division chains of
// the back substitutions overlap in the pipeline instead of serializing —
// the sweeps are latency-bound (each element's divide waits on the previous
// element's), and independent blocks are the only instruction-level
// parallelism a bit-exact solve can exploit. Every block performs exactly
// the arithmetic solveSegment would, in the same per-block order, so the
// result is identical to the sharded and per-segment paths for any
// interleaving.
func (s *TridiagSolver) solveSegmentsInterleaved(segs []int, dst, rhs []float64) {
	low, diag, sup := s.low, s.diag, s.sup
	nb := len(segs) - 1
	b := 0
	for ; b+4 <= nb; b += 4 {
		a0, a1 := segs[b], segs[b+1]
		b0, b1 := segs[b+1], segs[b+2]
		c0, c1 := segs[b+2], segs[b+3]
		d0, d1 := segs[b+3], segs[b+4]
		// Forward elimination, four chains in lockstep.
		dst[a0], dst[b0], dst[c0], dst[d0] = rhs[a0], rhs[b0], rhs[c0], rhs[d0]
		ia, ib, ic, id := a0+1, b0+1, c0+1, d0+1
		for ia < a1 && ib < b1 && ic < c1 && id < d1 {
			dst[ia] = rhs[ia] - low[ia]*dst[ia-1]
			dst[ib] = rhs[ib] - low[ib]*dst[ib-1]
			dst[ic] = rhs[ic] - low[ic]*dst[ic-1]
			dst[id] = rhs[id] - low[id]*dst[id-1]
			ia, ib, ic, id = ia+1, ib+1, ic+1, id+1
		}
		for ; ia < a1; ia++ {
			dst[ia] = rhs[ia] - low[ia]*dst[ia-1]
		}
		for ; ib < b1; ib++ {
			dst[ib] = rhs[ib] - low[ib]*dst[ib-1]
		}
		for ; ic < c1; ic++ {
			dst[ic] = rhs[ic] - low[ic]*dst[ic-1]
		}
		for ; id < d1; id++ {
			dst[id] = rhs[id] - low[id]*dst[id-1]
		}
		// Back substitution, four division chains in lockstep.
		dst[a1-1] /= diag[a1-1]
		dst[b1-1] /= diag[b1-1]
		dst[c1-1] /= diag[c1-1]
		dst[d1-1] /= diag[d1-1]
		ja, jb, jc, jd := a1-2, b1-2, c1-2, d1-2
		for ja >= a0 && jb >= b0 && jc >= c0 && jd >= d0 {
			dst[ja] = (dst[ja] - sup[ja]*dst[ja+1]) / diag[ja]
			dst[jb] = (dst[jb] - sup[jb]*dst[jb+1]) / diag[jb]
			dst[jc] = (dst[jc] - sup[jc]*dst[jc+1]) / diag[jc]
			dst[jd] = (dst[jd] - sup[jd]*dst[jd+1]) / diag[jd]
			ja, jb, jc, jd = ja-1, jb-1, jc-1, jd-1
		}
		for ; ja >= a0; ja-- {
			dst[ja] = (dst[ja] - sup[ja]*dst[ja+1]) / diag[ja]
		}
		for ; jb >= b0; jb-- {
			dst[jb] = (dst[jb] - sup[jb]*dst[jb+1]) / diag[jb]
		}
		for ; jc >= c0; jc-- {
			dst[jc] = (dst[jc] - sup[jc]*dst[jc+1]) / diag[jc]
		}
		for ; jd >= d0; jd-- {
			dst[jd] = (dst[jd] - sup[jd]*dst[jd+1]) / diag[jd]
		}
	}
	for ; b < nb; b++ {
		s.solveSegment(segs[b], segs[b+1], dst, rhs)
	}
}

// solveSegment runs the Thomas sweeps on rows [lo, hi), which must form an
// independent block (low[lo] == 0 or lo == 0, sup[hi-1] == 0 or hi == n).
func (s *TridiagSolver) solveSegment(lo, hi int, dst, rhs []float64) {
	low, diag, sup := s.low, s.diag, s.sup
	dst[lo] = rhs[lo]
	for i := lo + 1; i < hi; i++ {
		dst[i] = rhs[i] - low[i]*dst[i-1]
	}
	dst[hi-1] /= diag[hi-1]
	for i := hi - 2; i >= lo; i-- {
		dst[i] = (dst[i] - sup[i]*dst[i+1]) / diag[i]
	}
}
