package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildExample() *CSR {
	// [ 1 0 2 ]
	// [ 0 3 0 ]
	// [ 4 0 5 ]
	b := NewBuilder(3, 3)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	b.Add(1, 1, 3)
	b.Add(2, 0, 4)
	b.Add(2, 2, 5)
	return b.Build()
}

func TestBuilderAndAt(t *testing.T) {
	m := buildExample()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.NNZ() != 5 {
		t.Fatalf("NNZ = %d, want 5", m.NNZ())
	}
	want := [][]float64{{1, 0, 2}, {0, 3, 0}, {4, 0, 5}}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := m.At(i, j); got != want[i][j] {
				t.Errorf("At(%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}

func TestBuilderDuplicatesSum(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(0, 1, 2)
	b.Add(0, 1, 3)
	b.Add(1, 0, -1)
	m := b.Build()
	if got := m.At(0, 1); got != 5 {
		t.Errorf("duplicate sum = %g, want 5", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 after merging", m.NNZ())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderUnsortedInsertOrder(t *testing.T) {
	b := NewBuilder(1, 5)
	b.Add(0, 4, 4)
	b.Add(0, 0, 1)
	b.Add(0, 2, 2)
	m := b.Build()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 1 || m.At(0, 2) != 2 || m.At(0, 4) != 4 {
		t.Errorf("entries misplaced: %v %v", m.ColIdx, m.Val)
	}
}

func TestMulVec(t *testing.T) {
	m := buildExample()
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVec(dst, x)
	want := []float64{7, 6, 19}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVec[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestMulVecT(t *testing.T) {
	m := buildExample()
	x := []float64{1, 2, 3}
	dst := make([]float64, 3)
	m.MulVecT(dst, x)
	want := []float64{13, 6, 17} // mᵀx
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("MulVecT[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
}

func TestAddMulVecVariants(t *testing.T) {
	m := buildExample()
	x := []float64{1, 2, 3}
	dst := []float64{10, 10, 10}
	m.AddMulVec(dst, x, 2)
	want := []float64{24, 22, 48}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("AddMulVec[%d] = %g, want %g", i, dst[i], want[i])
		}
	}
	dstT := []float64{1, 1, 1}
	m.AddMulVecT(dstT, x, -1)
	wantT := []float64{-12, -5, -16}
	for i := range wantT {
		if dstT[i] != wantT[i] {
			t.Errorf("AddMulVecT[%d] = %g, want %g", i, dstT[i], wantT[i])
		}
	}
}

func TestTranspose(t *testing.T) {
	m := buildExample()
	tr := m.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Errorf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	x := []float64{4, 3, 2, 1}
	dst := make([]float64, 4)
	id.MulVec(dst, x)
	for i := range x {
		if dst[i] != x[i] {
			t.Errorf("identity MulVec changed x at %d", i)
		}
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	m := buildExample()
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	m.MulVec(make([]float64, 2), make([]float64, 3))
}

// randomCSR builds a random rows x cols CSR with the given fill density.
func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	b := NewBuilder(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				b.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return b.Build()
}

// Property: sparse MulVec agrees with the dense expansion.
func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		m := randomCSR(rng, rows, cols, 0.4)
		if err := m.Validate(); err != nil {
			t.Fatal(err)
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, rows)
		m.MulVec(got, x)
		d := m.Dense()
		for i := 0; i < rows; i++ {
			want := 0.0
			for j := 0; j < cols; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(got[i]-want) > 1e-12*math.Max(1, math.Abs(want)) {
				t.Fatalf("trial %d: MulVec[%d] = %g, dense %g", trial, i, got[i], want)
			}
		}
	}
}

// Property: MulVecT agrees with Transpose().MulVec.
func TestMulVecTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(12)
		cols := 1 + rng.Intn(12)
		m := randomCSR(rng, rows, cols, 0.4)
		x := make([]float64, rows)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := make([]float64, cols)
		m.MulVecT(got, x)
		want := make([]float64, cols)
		m.Transpose().MulVec(want, x)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-12*math.Max(1, math.Abs(want[j])) {
				t.Fatalf("trial %d: MulVecT[%d] = %g, want %g", trial, j, got[j], want[j])
			}
		}
	}
}

// Property: double transpose is the identity on the stored structure.
func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomCSR(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.3)
		tt := m.Transpose().Transpose()
		if tt.Rows != m.Rows || tt.Cols != m.Cols || tt.NNZ() != m.NNZ() {
			return false
		}
		for i := 0; i < m.Rows; i++ {
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				if tt.ColIdx[k] != m.ColIdx[k] || tt.Val[k] != m.Val[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
