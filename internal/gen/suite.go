package gen

import "fmt"

// SuiteEntry is one benchmark of the paper's evaluation suite with the
// full-size statistics from Table 1.
type SuiteEntry struct {
	Name        string
	SingleCells int     // "#S. Cell"
	DoubleCells int     // "#D. Cell"
	Density     float64 // "Density"
}

// Suite lists the 20 benchmarks of Table 1.
var Suite = []SuiteEntry{
	{"des_perf_1", 103842, 8802, 0.91},
	{"des_perf_a", 99775, 8513, 0.43},
	{"des_perf_b", 103842, 8802, 0.50},
	{"edit_dist_a", 121913, 5500, 0.46},
	{"fft_1", 30297, 1984, 0.84},
	{"fft_2", 30297, 1984, 0.50},
	{"fft_a", 28718, 1907, 0.25},
	{"fft_b", 28718, 1907, 0.28},
	{"matrix_mult_1", 152427, 2898, 0.80},
	{"matrix_mult_2", 152427, 2898, 0.79},
	{"matrix_mult_a", 146837, 2813, 0.42},
	{"matrix_mult_b", 143695, 2740, 0.31},
	{"matrix_mult_c", 143695, 2740, 0.31},
	{"pci_bridge32_a", 26268, 3249, 0.38},
	{"pci_bridge32_b", 25734, 3180, 0.14},
	{"superblue11_a", 861314, 64302, 0.43},
	{"superblue12", 1172586, 114362, 0.45},
	{"superblue14", 564769, 47474, 0.56},
	{"superblue16_a", 625419, 55031, 0.48},
	{"superblue19", 478109, 27988, 0.52},
}

// FindEntry returns the suite entry with the given name.
func FindEntry(name string) (SuiteEntry, error) {
	for _, e := range Suite {
		if e.Name == name {
			return e, nil
		}
	}
	return SuiteEntry{}, fmt.Errorf("gen: unknown benchmark %q", name)
}

// SuiteSpec builds a generation spec for a suite entry at the given scale
// (1 = full size, 0.01 = 1% of the cells). Each benchmark gets a
// deterministic seed derived from its name so results are reproducible.
func SuiteSpec(e SuiteEntry, scale float64) Spec {
	if scale <= 0 {
		scale = 1
	}
	singles := int(float64(e.SingleCells) * scale)
	doubles := int(float64(e.DoubleCells) * scale)
	if singles < 1 {
		singles = 1
	}
	if doubles < 1 {
		doubles = 1
	}
	return Spec{
		Name:        e.Name,
		SingleCells: singles,
		DoubleCells: doubles,
		Density:     e.Density,
		Seed:        nameSeed(e.Name),
	}
}

// nameSeed derives a stable 63-bit seed from a benchmark name (FNV-1a).
func nameSeed(name string) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime
	}
	return int64(h &^ (1 << 63))
}
