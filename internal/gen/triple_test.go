package gen

import "testing"

func TestGenerateTripleHeight(t *testing.T) {
	d, err := Generate(Spec{
		Name: "t", SingleCells: 150, DoubleCells: 20, TripleCells: 15,
		Density: 0.5, Seed: 81,
	})
	if err != nil {
		t.Fatal(err)
	}
	triples := 0
	for _, c := range d.Cells {
		if c.RowSpan == 3 {
			triples++
			if c.H != 3*d.RowHeight {
				t.Errorf("triple cell height %g", c.H)
			}
			if c.EvenSpan() {
				t.Error("triple misclassified as even span")
			}
		}
	}
	if triples != 15 {
		t.Errorf("triples = %d, want 15", triples)
	}
	// Every triple must have a compatible row somewhere (odd span: all rows).
	for _, c := range d.Cells {
		if c.RowSpan == 3 {
			if r := d.NearestCorrectRow(c, c.GY); r < 0 {
				t.Fatalf("triple %d has no row", c.ID)
			}
		}
	}
}
