package gen

import (
	"math"
	"testing"

	"mclg/internal/design"
)

func TestGenerateBasicShape(t *testing.T) {
	d, err := Generate(Spec{Name: "t", SingleCells: 200, DoubleCells: 20, Density: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) != 220 {
		t.Fatalf("cells = %d, want 220", len(d.Cells))
	}
	singles, doubles := 0, 0
	for _, c := range d.Cells {
		switch c.RowSpan {
		case 1:
			singles++
		case 2:
			doubles++
		default:
			t.Fatalf("unexpected span %d", c.RowSpan)
		}
		b := c.GlobalBounds()
		if !d.Core.ContainsRect(b) {
			t.Errorf("cell %d GP outside core: %v vs %v", c.ID, b, d.Core)
		}
	}
	if singles != 200 || doubles != 20 {
		t.Errorf("singles/doubles = %d/%d, want 200/20", singles, doubles)
	}
	// Density within a reasonable band of the target.
	if got := d.Density(); math.Abs(got-0.5) > 0.08 {
		t.Errorf("density = %g, want ~0.5", got)
	}
	if len(d.Nets) == 0 {
		t.Error("no nets generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{Name: "t", SingleCells: 100, DoubleCells: 10, Density: 0.4, Seed: 7}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) {
		t.Fatal("sizes differ between runs")
	}
	for i := range a.Cells {
		ca, cb := a.Cells[i], b.Cells[i]
		if ca.GX != cb.GX || ca.GY != cb.GY || ca.W != cb.W || ca.H != cb.H {
			t.Fatalf("cell %d differs between identical runs", i)
		}
	}
	for i := range a.Nets {
		if len(a.Nets[i].Pins) != len(b.Nets[i].Pins) {
			t.Fatalf("net %d differs", i)
		}
	}
}

func TestGenerateSeedChangesPlacement(t *testing.T) {
	a, _ := Generate(Spec{Name: "t", SingleCells: 100, DoubleCells: 10, Density: 0.4, Seed: 1})
	b, _ := Generate(Spec{Name: "t", SingleCells: 100, DoubleCells: 10, Density: 0.4, Seed: 2})
	same := 0
	for i := range a.Cells {
		if a.Cells[i].GX == b.Cells[i].GX {
			same++
		}
	}
	if same == len(a.Cells) {
		t.Error("different seeds produced identical placements")
	}
}

func TestGenerateDoubleCellsAreaPreserved(t *testing.T) {
	// Doubles have halved width (rounded up to a site) and doubled height.
	d, err := Generate(Spec{Name: "t", SingleCells: 10, DoubleCells: 50, Density: 0.4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		if c.RowSpan != 2 {
			continue
		}
		if c.H != 2*d.RowHeight {
			t.Errorf("double cell height %g", c.H)
		}
		if c.W < 2 || c.W > 6 {
			t.Errorf("double cell width %g out of [2, 6]", c.W)
		}
	}
}

func TestGenerateDoublesRailMatchesSeedRow(t *testing.T) {
	// Doubles must carry a rail matching their seed row so the GP is
	// mostly rail-consistent.
	d, err := Generate(Spec{Name: "t", SingleCells: 50, DoubleCells: 30, Density: 0.4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	consistent := 0
	total := 0
	for _, c := range d.Cells {
		if c.RowSpan != 2 {
			continue
		}
		total++
		if r := d.NearestCorrectRow(c, c.GY); r >= 0 {
			// The nearest correct row should usually be within one row of
			// the geometric nearest.
			if math.Abs(d.RowY(r)-c.GY) <= 2*d.RowHeight {
				consistent++
			}
		}
	}
	if total == 0 {
		t.Fatal("no doubles")
	}
	if float64(consistent)/float64(total) < 0.9 {
		t.Errorf("only %d/%d doubles near a compatible row", consistent, total)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Spec{Name: "t", Density: 0.5}); err == nil {
		t.Error("expected error for zero cells")
	}
	if _, err := Generate(Spec{Name: "t", SingleCells: 10, Density: 0}); err == nil {
		t.Error("expected error for zero density")
	}
	if _, err := Generate(Spec{Name: "t", SingleCells: 10, Density: 1.5}); err == nil {
		t.Error("expected error for density > 1")
	}
}

func TestNetsAreLocal(t *testing.T) {
	d, err := Generate(Spec{Name: "t", SingleCells: 500, DoubleCells: 50, Density: 0.5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Median net bounding box should be much smaller than the core width.
	var spans []float64
	for _, n := range d.Nets {
		minX, maxX := math.Inf(1), math.Inf(-1)
		for _, p := range n.Pins {
			x := d.Cells[p.CellID].GX + p.DX
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		}
		spans = append(spans, maxX-minX)
	}
	if len(spans) == 0 {
		t.Fatal("no nets")
	}
	// Rough central tendency: count nets spanning less than half the core.
	local := 0
	for _, s := range spans {
		if s < d.Core.W()/2 {
			local++
		}
	}
	if float64(local)/float64(len(spans)) < 0.8 {
		t.Errorf("only %d/%d nets are local", local, len(spans))
	}
}

func TestSuiteEntries(t *testing.T) {
	if len(Suite) != 20 {
		t.Fatalf("suite has %d entries, want 20", len(Suite))
	}
	seen := map[string]bool{}
	for _, e := range Suite {
		if seen[e.Name] {
			t.Errorf("duplicate benchmark %s", e.Name)
		}
		seen[e.Name] = true
		if e.SingleCells <= 0 || e.DoubleCells <= 0 || e.Density <= 0 || e.Density >= 1 {
			t.Errorf("bad entry %+v", e)
		}
	}
	if _, err := FindEntry("fft_2"); err != nil {
		t.Error(err)
	}
	if _, err := FindEntry("nope"); err == nil {
		t.Error("expected error for unknown benchmark")
	}
}

func TestSuiteSpecScaling(t *testing.T) {
	e, _ := FindEntry("fft_2")
	s := SuiteSpec(e, 0.01)
	if s.SingleCells != 302 || s.DoubleCells != 19 {
		t.Errorf("scaled = %d/%d, want 302/19", s.SingleCells, s.DoubleCells)
	}
	if s.Seed == 0 {
		t.Error("seed not derived")
	}
	s2 := SuiteSpec(e, 0.01)
	if s2.Seed != s.Seed {
		t.Error("seed not deterministic")
	}
	other := SuiteSpec(Suite[0], 0.01)
	if other.Seed == s.Seed {
		t.Error("different benchmarks share a seed")
	}
}

func TestSingleHeightVariant(t *testing.T) {
	e, _ := FindEntry("fft_2")
	s := SuiteSpec(e, 0.01)
	sv := SingleHeightVariant(s)
	if sv.DoubleCells != 0 {
		t.Error("variant still has doubles")
	}
	if sv.SingleCells != s.SingleCells+s.DoubleCells {
		t.Error("cell count not preserved")
	}
	d, err := Generate(sv)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		if c.RowSpan != 1 {
			t.Fatalf("variant produced a span-%d cell", c.RowSpan)
		}
	}
}

func TestGeneratedDesignLegalizable(t *testing.T) {
	// Sanity: a generated benchmark can be swallowed by the occupancy
	// machinery (all cells fit somewhere).
	d, err := Generate(Spec{Name: "t", SingleCells: 300, DoubleCells: 30, Density: 0.6, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range d.Cells {
		if r := d.NearestCorrectRow(c, c.GY); r < 0 {
			t.Fatalf("cell %d has no compatible row", c.ID)
		}
	}
	_ = design.CheckLegal(d) // must not panic on an overlapping GP
}

func TestGenerateFixedMacros(t *testing.T) {
	d, err := Generate(Spec{
		Name: "m", SingleCells: 200, DoubleCells: 20, FixedMacros: 4,
		Density: 0.5, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	macros := 0
	for _, c := range d.Cells {
		if !c.Fixed {
			continue
		}
		macros++
		if c.RowSpan < 2 {
			t.Errorf("macro %d only %d rows tall", c.ID, c.RowSpan)
		}
		if !d.Core.ContainsRect(c.Bounds()) {
			t.Errorf("macro %d outside core: %v", c.ID, c.Bounds())
		}
	}
	if macros != 4 {
		t.Fatalf("macros = %d, want 4", macros)
	}
	// Macros must not overlap each other.
	for i, a := range d.Cells {
		if !a.Fixed {
			continue
		}
		for _, b := range d.Cells[i+1:] {
			if b.Fixed && a.Bounds().Overlaps(b.Bounds()) {
				t.Errorf("macros %d and %d overlap", a.ID, b.ID)
			}
		}
	}
}
