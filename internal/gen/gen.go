// Package gen synthesizes mixed-cell-height benchmarks that mirror the
// statistical regime of the paper's evaluation suite (modified ISPD-2015
// contest designs): per-benchmark density and single/double cell-count
// ratios from Table 1, double-height cells built the way the paper builds
// them (10% of cells doubled in height and halved in width, preserving
// area), a spread-out "global placement" with Gaussian overlap noise, and
// locality-weighted multi-pin nets for HPWL measurement.
//
// The real contest benchmarks are a proprietary download, so this generator
// is the substitution documented in DESIGN.md: the legalizer consumes only
// cell geometry plus a noisy global placement, which the generator
// reproduces at any scale.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mclg/internal/design"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name        string
	SingleCells int
	DoubleCells int
	// TripleCells adds triple-row-height cells (an extension beyond the
	// paper's double-height benchmark modification; the legalizer's block
	// solver handles any span).
	TripleCells int

	// FixedMacros places immovable macro blocks before the standard cells
	// (the original ISPD-2015 designs contain fixed macros; the paper's
	// modified benchmarks keep them as blockages). Macros are several rows
	// tall and tens of sites wide, never overlap each other, and consume
	// row capacity that the movable cells must flow around.
	FixedMacros int
	Density     float64
	Seed        int64

	// NoiseX and NoiseY are the white-noise standard deviations of the
	// global placement in site widths and row heights; zero means the
	// defaults (0.75 sites, 0.15 rows). White noise creates local ordering
	// inversions and row ambiguity; a converged analytic placer leaves
	// little of either, which is the regime the paper's premise ("honoring
	// the good cell positions from global placement") assumes. The
	// noise-sensitivity ablation bench explores larger values, where
	// ordering-free greedy legalizers overtake ordering-preserving ones.
	NoiseX, NoiseY float64

	// WarpX and WarpY are the amplitudes of the smooth displacement field
	// applied to the seed placement, in site widths and row heights; zero
	// means the defaults (8 sites, 0.3 rows). An analytic global placer's
	// deviation from a legal placement is spatially correlated — regions
	// shift together under density forces — which a low-frequency warp
	// models while preserving the local cell ordering the paper's
	// algorithm honors.
	WarpX, WarpY float64

	// NetsPerCell scales netlist size; zero means the default 0.9.
	NetsPerCell float64

	// RowHeight and SiteW default to 10 and 1.
	RowHeight, SiteW float64
}

func (s Spec) withDefaults() Spec {
	if s.NoiseX == 0 {
		s.NoiseX = 0.75
	}
	if s.NoiseY == 0 {
		s.NoiseY = 0.15
	}
	if s.WarpX == 0 {
		s.WarpX = 8
	}
	if s.WarpY == 0 {
		s.WarpY = 0.3
	}
	if s.NetsPerCell == 0 {
		s.NetsPerCell = 0.9
	}
	if s.RowHeight == 0 {
		s.RowHeight = 10
	}
	if s.SiteW == 0 {
		s.SiteW = 1
	}
	return s
}

// Generate builds the benchmark: a design whose cells carry global-placement
// positions (GX, GY; X, Y start at the same place) and a netlist.
func Generate(spec Spec) (*design.Design, error) {
	s := spec.withDefaults()
	if s.SingleCells+s.DoubleCells == 0 {
		return nil, fmt.Errorf("gen: %s: no cells", s.Name)
	}
	if s.Density <= 0 || s.Density >= 1 {
		return nil, fmt.Errorf("gen: %s: density %g out of (0, 1)", s.Name, s.Density)
	}
	rng := rand.New(rand.NewSource(s.Seed))

	// Cell widths in sites: singles uniform in [4, 12]; doubles are halved
	// and doubled in height, preserving area (the paper's modification).
	type protoCell struct {
		w    float64
		span int
	}
	protos := make([]protoCell, 0, s.SingleCells+s.DoubleCells+s.TripleCells)
	totalArea := 0.0
	for i := 0; i < s.SingleCells; i++ {
		w := float64(4+rng.Intn(9)) * s.SiteW
		protos = append(protos, protoCell{w: w, span: 1})
		totalArea += w * s.RowHeight
	}
	for i := 0; i < s.DoubleCells; i++ {
		w := float64(4+rng.Intn(9)) * s.SiteW
		// Halve the width (rounding up to a whole number of sites so
		// halving stays on the site grid) and double the height.
		hw := math.Ceil(w/(2*s.SiteW)) * s.SiteW
		protos = append(protos, protoCell{w: hw, span: 2})
		totalArea += hw * 2 * s.RowHeight
	}
	for i := 0; i < s.TripleCells; i++ {
		w := float64(6+rng.Intn(9)) * s.SiteW
		tw := math.Ceil(w/(3*s.SiteW)) * s.SiteW
		protos = append(protos, protoCell{w: tw, span: 3})
		totalArea += tw * 3 * s.RowHeight
	}
	rng.Shuffle(len(protos), func(i, j int) { protos[i], protos[j] = protos[j], protos[i] })

	// Core sizing: near-square, area = totalArea / density.
	coreArea := totalArea / s.Density
	numRows := int(math.Max(4, math.Round(math.Sqrt(coreArea)/s.RowHeight)))
	if numRows%2 == 1 {
		numRows++ // even row count keeps VSS/VDD rail counts balanced
	}
	numSites := int(math.Ceil(coreArea / (float64(numRows) * s.RowHeight * s.SiteW)))

	d := design.NewDesign(design.Config{
		Name:      s.Name,
		NumRows:   numRows,
		NumSites:  numSites,
		RowHeight: s.RowHeight,
		SiteW:     s.SiteW,
	})

	// Seed placement: pack cells into rows with randomized gaps so the
	// "global placement" is spread out like a real analytic placer's
	// output, then perturb with Gaussian noise.
	cursor := make([]float64, numRows)

	// Fixed macros first: each occupies a run of rows starting at a random
	// cursor-aligned position; the row cursors skip past them so movable
	// cells pack around the blockages.
	for i := 0; i < s.FixedMacros; i++ {
		mh := 2 + rng.Intn(3) // 2-4 rows tall
		if mh > numRows {
			mh = numRows
		}
		mw := float64(10+rng.Intn(20)) * s.SiteW
		row := rng.Intn(numRows - mh + 1)
		base := 0.0
		for k := 0; k < mh; k++ {
			if cursor[row+k] > base {
				base = cursor[row+k]
			}
		}
		x := base + float64(rng.Intn(10))*s.SiteW
		if x+mw > d.Core.Hi.X {
			x = math.Max(0, d.Core.Hi.X-mw)
		}
		m := d.AddCell(fmt.Sprintf("macro%d", i), mw, float64(mh)*s.RowHeight, design.VSS)
		m.Fixed = true
		m.X, m.Y = x, d.RowY(row)
		m.GX, m.GY = m.X, m.Y
		for k := 0; k < mh; k++ {
			if x+mw > cursor[row+k] {
				cursor[row+k] = x + mw
			}
		}
	}
	meanGapFactor := 1/s.Density - 1
	rowXMax := d.Core.Hi.X

	leastLoadedRow := func(span int) int {
		best, bestCur := -1, math.Inf(1)
		for r := 0; r+span <= numRows; r++ {
			cur := cursor[r]
			for k := 1; k < span; k++ {
				if cursor[r+k] > cur {
					cur = cursor[r+k]
				}
			}
			if cur < bestCur {
				bestCur, best = cur, r
			}
		}
		return best
	}

	for _, pc := range protos {
		span := pc.span
		h := float64(span) * s.RowHeight
		row := leastLoadedRow(span)
		if row < 0 {
			return nil, fmt.Errorf("gen: %s: no row for span-%d cell", s.Name, span)
		}
		base := cursor[row]
		for k := 1; k < span; k++ {
			if cursor[row+k] > base {
				base = cursor[row+k]
			}
		}
		gap := rng.ExpFloat64() * meanGapFactor * pc.w
		x := base + gap
		if x+pc.w > rowXMax {
			x = base // drop the gap when the row is nearly full
			if x+pc.w > rowXMax {
				x = rowXMax - pc.w // overflow: overlap in GP is acceptable
				if x < 0 {
					x = 0
				}
			}
		}
		rail := d.Rows[row].Rail
		c := d.AddCell(fmt.Sprintf("o%d", len(d.Cells)), pc.w, h, rail)
		c.X, c.Y = x, d.RowY(row)
		for k := 0; k < span; k++ {
			nc := cursor[row+k]
			if x+pc.w > nc {
				cursor[row+k] = x + pc.w
			}
		}
	}

	// Perturb the seed placement into the "global placement": a smooth
	// low-frequency warp (regions drift together, local ordering is mostly
	// preserved) plus small white noise. Vertical amplitudes shrink with
	// density headroom: a real analytic placer keeps row loads even, and
	// unscaled y-movement at density 0.9 would overload rows and inflate
	// displacement far beyond the regime the paper's benchmarks exhibit.
	// The x-warp also scales with headroom: a density-driven placer never
	// compresses an already-dense region, and an unscaled warp at density
	// 0.85+ would push local utilization past 1.
	headroom := math.Min(1, 2*(1-s.Density))
	warp := newWarpField(rng, d.Core.W(), d.Core.H(),
		s.WarpX*s.SiteW*headroom, s.WarpY*s.RowHeight*headroom)
	noiseY := s.NoiseY * headroom
	for _, c := range d.Cells {
		if c.Fixed {
			continue
		}
		wx, wy := warp.at(c.X, c.Y)
		c.GX = clamp(c.X+wx+rng.NormFloat64()*s.NoiseX*s.SiteW, 0, rowXMax-c.W)
		c.GY = clamp(c.Y+wy+rng.NormFloat64()*noiseY*s.RowHeight, 0, d.Core.Hi.Y-c.H)
		c.X, c.Y = c.GX, c.GY
	}

	genNets(d, rng, s)
	return d, nil
}

// warpField is a sum of a few random low-frequency sinusoids, one
// displacement component per axis.
type warpField struct {
	modes []warpMode
}

type warpMode struct {
	kx, ky, phase float64 // spatial frequency and phase
	ax, ay        float64 // displacement amplitude per axis
}

func newWarpField(rng *rand.Rand, w, h, ampX, ampY float64) *warpField {
	const nModes = 4
	f := &warpField{}
	for i := 0; i < nModes; i++ {
		// Wavelengths between 1/3 and the full core extent.
		lx := w / (1 + 2*rng.Float64())
		ly := h / (1 + 2*rng.Float64())
		f.modes = append(f.modes, warpMode{
			kx:    2 * math.Pi / lx,
			ky:    2 * math.Pi / ly,
			phase: rng.Float64() * 2 * math.Pi,
			ax:    ampX / nModes * (0.5 + rng.Float64()),
			ay:    ampY / nModes * (0.5 + rng.Float64()),
		})
	}
	return f
}

func (f *warpField) at(x, y float64) (dx, dy float64) {
	for _, m := range f.modes {
		s := math.Sin(m.kx*x + m.ky*y + m.phase)
		c := math.Cos(m.kx*x - m.ky*y + 2*m.phase)
		dx += m.ax * s
		dy += m.ay * c
	}
	return dx, dy
}

func clamp(x, lo, hi float64) float64 {
	if hi < lo {
		hi = lo
	}
	return math.Min(math.Max(x, lo), hi)
}

// genNets builds a locality-weighted netlist: each net anchors at a random
// cell and connects to cells drawn from a neighborhood window, mimicking
// the spatial locality a placed real netlist exhibits (which is what makes
// ΔHPWL a meaningful metric).
func genNets(d *design.Design, rng *rand.Rand, s Spec) {
	n := len(d.Cells)
	if n < 2 {
		return
	}
	// Spatial index: cells sorted by GX.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return d.Cells[order[a]].GX < d.Cells[order[b]].GX })
	posOf := make([]int, n)
	for p, id := range order {
		posOf[id] = p
	}

	numNets := int(float64(n) * s.NetsPerCell)
	window := 40 // candidate neighbors in x-order around the anchor
	for k := 0; k < numNets; k++ {
		anchor := rng.Intn(n)
		degree := 2
		for rng.Float64() < 0.45 && degree < 8 {
			degree++
		}
		seen := map[int]bool{anchor: true}
		pins := []design.Pin{randomPin(d, rng, anchor)}
		p := posOf[anchor]
		for len(pins) < degree {
			q := p + rng.Intn(2*window+1) - window
			if q < 0 || q >= n {
				continue
			}
			id := order[q]
			if seen[id] {
				// Fall back to a uniform pick to avoid spinning in tiny
				// neighborhoods.
				id = rng.Intn(n)
				if seen[id] {
					continue
				}
			}
			seen[id] = true
			pins = append(pins, randomPin(d, rng, id))
		}
		d.Nets = append(d.Nets, design.Net{Name: fmt.Sprintf("n%d", k), Pins: pins})
	}
}

func randomPin(d *design.Design, rng *rand.Rand, cellID int) design.Pin {
	c := d.Cells[cellID]
	return design.Pin{
		CellID: cellID,
		DX:     rng.Float64() * c.W,
		DY:     rng.Float64() * c.H,
	}
}

// SingleHeightVariant returns a spec for the same benchmark "without
// doubling the cell heights" (Section 5.3): the double-height cells revert
// to single-height at twice the width, preserving area and count.
func SingleHeightVariant(s Spec) Spec {
	out := s
	out.Name = s.Name + "_single"
	out.SingleCells = s.SingleCells + s.DoubleCells
	out.DoubleCells = 0
	return out
}
