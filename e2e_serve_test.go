package mclg

// End-to-end tests for the serving layer: a real mclgd process driven by
// the real mclg client binary over HTTP, including SIGTERM drain.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startMclgd launches the daemon on an ephemeral port and returns its base
// URL plus the running command. The caller owns shutdown.
func startMclgd(t *testing.T, bin string, extraArgs ...string) (*exec.Cmd, string, *bufio.Scanner) {
	t.Helper()
	return startDaemon(t, bin, "mclgd listening", extraArgs...)
}

// startDaemon launches an mclgd process in any role and waits for the given
// structured announcement line (standalone/coordinator say "mclgd listening",
// the worker role says "mclgd worker listening") plus a ready /readyz.
func startDaemon(t *testing.T, bin, readyMsg string, extraArgs ...string) (*exec.Cmd, string, *bufio.Scanner) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extraArgs...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// The first structured log line announces the bound address.
	sc := bufio.NewScanner(stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var addr string
	for sc.Scan() {
		var ev struct {
			Msg  string `json:"msg"`
			Addr string `json:"addr"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Msg == readyMsg {
			addr = ev.Addr
			break
		}
	}
	if addr == "" {
		_ = cmd.Process.Kill()
		t.Fatalf("mclgd never announced %q", readyMsg)
	}
	url := "http://" + addr
	for i := 0; i < 100; i++ {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, url, sc
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatal("mclgd never became ready")
	return nil, "", nil
}

// drainLogs consumes the daemon's remaining stderr so the process never
// blocks on a full pipe, returning everything read.
func drainLogs(sc *bufio.Scanner) chan string {
	out := make(chan string, 1)
	go func() {
		var sb strings.Builder
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteByte('\n')
		}
		out <- sb.String()
	}()
	return out
}

// TestE2EMclgJSONLocal checks that a local (serverless) -json run emits the
// same machine-readable schema the daemon returns.
func TestE2EMclgJSONLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mclg := buildCmd(t, "mclg")
	out, err := exec.Command(mclg, "-bench", "fft_2", "-scale", "0.004", "-json").Output()
	if err != nil {
		t.Fatalf("mclg -json: %v\n%s", err, out)
	}
	var rep struct {
		Design     string  `json:"design"`
		Legal      bool    `json:"legal"`
		Converged  bool    `json:"converged"`
		Iterations int     `json:"iterations"`
		PosHash    string  `json:"pos_hash"`
		WallMS     float64 `json:"wall_ms"`
		Cache      string  `json:"cache"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("stdout is not one JSON document: %v\n%s", err, out)
	}
	if rep.Design != "fft_2" || !rep.Legal || !rep.Converged || rep.Iterations == 0 || rep.PosHash == "" {
		t.Errorf("unexpected report: %+v", rep)
	}
	if rep.Cache != "" {
		t.Errorf("local run must not claim a cache disposition, got %q", rep.Cache)
	}
}

// TestE2EClientRetryAfterFullQueue saturates a tiny daemon (pool 1, queue 1)
// with slow jobs, verifies raw submissions are refused with 429 + Retry-After,
// and then checks that `mclg -retry` rides out the refusals: it backs off as
// told and ultimately returns a legal result once capacity frees up.
func TestE2EClientRetryAfterFullQueue(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mclgd := buildCmd(t, "mclgd")
	mclg := buildCmd(t, "mclg")
	daemon, url, sc := startMclgd(t, mclgd, "-pool", "1", "-queue", "1")
	logs := drainLogs(sc)
	defer func() { _ = daemon.Process.Kill(); <-logs }()

	// Deliberately slow jobs: superblue19 at a tolerance that takes seconds,
	// each at a distinct scale so the daemon's identical-request coalescing
	// cannot merge them — every post must claim its own pool or queue slot.
	scaleSeq := 0
	nextSlowBody := func() string {
		scaleSeq++
		return fmt.Sprintf(`{"bench":"superblue19","scale":%g,"options":{"eps":0.000001}}`,
			0.02-float64(scaleSeq)*0.0001)
	}
	postSlow := func() (*http.Response, error) {
		return http.Post(url+"/v1/legalize", "application/json", strings.NewReader(nextSlowBody()))
	}
	launchSlow := func() {
		go func() {
			resp, err := postSlow()
			if err != nil {
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
	}
	launchSlow() // occupies the pool
	launchSlow() // occupies the queue

	// Wait until the daemon's own gauges show both slots taken, then a raw
	// probe must be refused. Probing before saturation would be admitted and
	// block for the whole job — the metrics gauge avoids that race.
	saturated := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		resp, err := http.Get(url + "/metrics")
		if err != nil {
			t.Fatalf("metrics scrape: %v", err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(raw), "mclgd_inflight_jobs 1") &&
			strings.Contains(string(raw), "mclgd_queue_depth 1") {
			saturated = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saturated {
		t.Fatal("daemon with -pool 1 -queue 1 never filled up under two slow jobs")
	}
	resp, err := postSlow()
	if err != nil {
		t.Fatalf("probe post: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("probe against a full daemon: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 429 carried no Retry-After hint")
	}

	// The retrying client must survive the full queue. Capture stdout and
	// stderr separately: -json keeps stdout to one document, while the retry
	// chatter lands on stderr.
	cmd := exec.Command(mclg, "-server", url, "-retry", "8", "-bench", "fft_2", "-scale", "0.004", "-json")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("mclg -retry 8 failed against a saturated daemon: %v\nstderr:\n%s", err, stderr.String())
	}
	var rep struct {
		Legal   bool   `json:"legal"`
		PosHash string `json:"pos_hash"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("client -json output unparsable: %v\n%s", err, out)
	}
	if !rep.Legal || rep.PosHash == "" {
		t.Errorf("retried job returned %+v, want a legal result", rep)
	}
	// Saturation was confirmed milliseconds before the client launched and
	// the stacked jobs hold the daemon for seconds, so the client must have
	// been refused at least once and said so.
	if s := stderr.String(); !strings.Contains(s, "server busy (HTTP 429), retry") {
		t.Errorf("client stderr carries no retry message despite a saturated daemon:\n%s", s)
	}
}

func TestE2EMclgdServeSubmitAndDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mclgd := buildCmd(t, "mclgd")
	mclg := buildCmd(t, "mclg")
	daemon, url, sc := startMclgd(t, mclgd)
	logs := drainLogs(sc)
	defer func() { _ = daemon.Process.Kill() }()

	// Submit the same benchmark twice through the client: first a solve,
	// then a cache hit with the identical placement digest.
	type rep struct {
		Legal   bool   `json:"legal"`
		Cache   string `json:"cache"`
		PosHash string `json:"pos_hash"`
	}
	submit := func() rep {
		// -json keeps stdout to exactly one JSON document (chatter goes
		// to stderr), so capture stdout alone.
		out, err := exec.Command(mclg, "-server", url, "-bench", "fft_2", "-scale", "0.004", "-json").Output()
		if err != nil {
			t.Fatalf("client submit failed: %v\n%s", err, out)
		}
		var r rep
		if err := json.Unmarshal(out, &r); err != nil {
			t.Fatalf("client -json output unparsable: %v\n%s", err, out)
		}
		return r
	}
	first := submit()
	if !first.Legal || first.Cache != "miss" {
		t.Fatalf("first submit: %+v, want legal miss", first)
	}
	second := submit()
	if !second.Legal || second.Cache != "hit" || second.PosHash != first.PosHash {
		t.Fatalf("second submit: %+v, want hit with pos_hash %s", second, first.PosHash)
	}

	// The observability surface reflects the traffic.
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"mclgd_cache_hits_total 1",
		"mclgd_cache_misses_total 1",
		`mclgd_jobs_total{class="ok"} 1`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// SIGTERM while a heavier job is in flight: the job must complete with
	// a verified-legal result and the daemon must exit 0 after draining.
	type clientResult struct {
		rep rep
		err error
		out string
	}
	inFlight := make(chan clientResult, 1)
	go func() {
		out, err := exec.Command(mclg, "-server", url, "-bench", "superblue19",
			"-scale", "0.02", "-eps", "1e-6", "-json").Output()
		var r rep
		if err == nil {
			err = json.Unmarshal(out, &r)
		}
		inFlight <- clientResult{r, err, string(out)}
	}()
	time.Sleep(300 * time.Millisecond) // let the job reach the daemon
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	select {
	case res := <-inFlight:
		if res.err != nil {
			t.Fatalf("in-flight job failed across SIGTERM: %v\n%s", res.err, res.out)
		}
		if !res.rep.Legal {
			t.Errorf("drained job returned an illegal result: %+v", res.rep)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("in-flight job never completed after SIGTERM")
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- daemon.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("mclgd exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("mclgd never exited after SIGTERM")
	}
	if lg := <-logs; !strings.Contains(lg, "mclgd stopped") {
		t.Errorf("daemon logs missing drain completion:\n%s", lg)
	}
}
