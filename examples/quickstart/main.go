// Quickstart: build a tiny mixed-cell-height design by hand, run the MMSIM
// legalizer, and print the before/after positions and quality metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/metrics"
)

func main() {
	// A chip with 6 rows of 40 sites. Rails alternate VSS, VDD, VSS, ...
	// from the bottom.
	d := design.NewDesign(design.Config{
		Name:      "quickstart",
		NumRows:   6,
		NumSites:  40,
		RowHeight: 10,
		SiteW:     1,
	})

	// Three single-height cells fighting over the same spot, plus a
	// double-height cell whose bottom edge must land on a VSS rail.
	type spec struct {
		name   string
		w, h   float64
		rail   design.RailType
		gx, gy float64
	}
	for _, s := range []spec{
		{"and2", 8, 10, design.VSS, 10, 1},
		{"or2", 8, 10, design.VSS, 12, 2},
		{"inv", 6, 10, design.VSS, 14, 0},
		{"dff", 6, 20, design.VSS, 11, 14}, // double height: needs a VSS row
	} {
		c := d.AddCell(s.name, s.w, s.h, s.rail)
		c.GX, c.GY = s.gx, s.gy
		c.X, c.Y = s.gx, s.gy
	}

	// Wire them up so ΔHPWL means something.
	d.Nets = append(d.Nets,
		design.Net{Name: "n1", Pins: []design.Pin{
			{CellID: 0, DX: 7, DY: 5}, {CellID: 1, DX: 1, DY: 5},
		}},
		design.Net{Name: "n2", Pins: []design.Pin{
			{CellID: 1, DX: 7, DY: 5}, {CellID: 2, DX: 1, DY: 5}, {CellID: 3, DX: 3, DY: 10},
		}},
	)

	fmt.Println("global placement (overlapping):")
	for _, c := range d.Cells {
		fmt.Printf("  %-5s at (%5.1f, %5.1f)  %gx%g\n", c.Name, c.GX, c.GY, c.W, c.H)
	}

	leg := core.New(core.Options{}) // paper defaults: λ=1000, β*=θ*=0.5
	stats, err := leg.Legalize(d)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nlegalized:")
	for _, c := range d.Cells {
		flip := ""
		if c.Flipped {
			flip = " (flipped)"
		}
		fmt.Printf("  %-5s at (%5.1f, %5.1f)%s\n", c.Name, c.X, c.Y, flip)
	}

	disp := metrics.MeasureDisplacement(d)
	fmt.Printf("\nMMSIM iterations: %d (converged %v)\n", stats.Iterations, stats.Converged)
	fmt.Printf("total displacement: %.1f sites, ΔHPWL %.2f%%\n",
		disp.TotalSites, 100*metrics.DeltaHPWL(d))
	fmt.Printf("legality: %s\n", design.CheckLegal(d))
}
