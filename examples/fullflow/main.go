// Full physical-design flow on one design: analytic global placement
// (internal/gp, quadratic wirelength + lookahead spreading) followed by the
// paper's MMSIM legalization and the MrDP-style refinement. This is the
// three-stage flow the paper's introduction describes, built end to end
// from the substrates in this repository.
//
//	go run ./examples/fullflow
package main

import (
	"fmt"
	"log"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/gp"
	"mclg/internal/metrics"
	"mclg/internal/refine"
)

func main() {
	// Start from a generated netlist; scrub the positions so the global
	// placer works from scratch.
	d, err := gen.Generate(gen.Spec{
		Name: "fullflow", SingleCells: 600, DoubleCells: 60, Density: 0.5, Seed: 2017,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range d.Cells {
		c.GX, c.GY = d.Core.Center().X, d.Core.Center().Y
		c.X, c.Y = c.GX, c.GY
	}
	fmt.Printf("design: %d cells, %d nets, density %.2f\n\n", len(d.Cells), len(d.Nets), d.Density())

	// Stage 1: global placement.
	gpRes, err := gp.Place(d, gp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1. global placement: %d rounds, %d CG iterations, overflow %.3f\n",
		gpRes.Iterations, gpRes.CGIters, gpRes.Overflow)
	fmt.Printf("   HPWL after GP: %.0f\n\n", metrics.HPWLGlobal(d))

	// Stage 2: legalization (the paper's algorithm).
	legRes, err := core.New(core.Options{}).Legalize(d)
	if err != nil {
		log.Fatal(err)
	}
	disp := metrics.MeasureDisplacement(d)
	fmt.Printf("2. legalization: %d MMSIM iterations, %d illegal repaired\n",
		legRes.Iterations, legRes.Illegal)
	fmt.Printf("   displacement %.0f sites (avg %.2f/cell), ΔHPWL %+.2f%%\n",
		disp.TotalSites, disp.TotalSites/float64(len(d.Cells)), 100*metrics.DeltaHPWL(d))
	fmt.Printf("   legality: %s\n\n", design.CheckLegal(d))

	// Stage 3: detailed placement (wirelength refinement).
	ref, err := refine.Refine(d, refine.Options{Objective: refine.HPWL, MaxPasses: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. detailed placement: %d slides, %d swaps\n", ref.Slides, ref.Swaps)
	fmt.Printf("   HPWL %.0f -> %.0f (%.1f%% better)\n",
		ref.Initial, ref.Final, 100*(ref.Initial-ref.Final)/ref.Initial)
	fmt.Printf("   final legality: %s\n", design.CheckLegal(d))
}
