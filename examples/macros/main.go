// Fixed-macro blockages: the original ISPD-2015 designs contain immovable
// macros that standard cells must flow around. This example generates a
// design with macros, legalizes it, and verifies that no movable cell
// overlaps a blockage — the QP ignores fixed cells (as the paper's modified
// benchmarks do) and the Tetris allocation repairs any collisions.
//
//	go run ./examples/macros
package main

import (
	"fmt"
	"log"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
	"mclg/internal/render"
)

func main() {
	d, err := gen.Generate(gen.Spec{
		Name: "macros", SingleCells: 500, DoubleCells: 50, FixedMacros: 6,
		Density: 0.6, Seed: 97,
	})
	if err != nil {
		log.Fatal(err)
	}
	macros := 0
	for _, c := range d.Cells {
		if c.Fixed {
			macros++
		}
	}
	fmt.Printf("design: %d movable cells, %d fixed macros, density %.2f\n",
		len(d.Cells)-macros, macros, d.Density())

	stats, err := core.New(core.Options{}).Legalize(d)
	if err != nil {
		log.Fatal(err)
	}
	disp := metrics.MeasureDisplacement(d)
	fmt.Printf("legalized: %d MMSIM iterations, %d illegal repaired\n",
		stats.Iterations, stats.Illegal)
	fmt.Printf("displacement: %.0f sites (avg %.2f/cell)\n",
		disp.TotalSites, disp.TotalSites/float64(len(d.Cells)-macros))
	fmt.Printf("legality: %s\n", design.CheckLegal(d))

	collisions := 0
	for _, m := range d.Cells {
		if !m.Fixed {
			continue
		}
		for _, c := range d.Cells {
			if !c.Fixed && c.Bounds().Overlaps(m.Bounds()) {
				collisions++
			}
		}
	}
	fmt.Printf("cell/macro collisions: %d\n", collisions)

	if err := render.SVGFile(d, "macros.svg", render.Options{Displacement: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote macros.svg (macros in gray)")
}
