// Power-rail alignment (the Figure 1 scenario): odd-row-height cells can go
// to any row by flipping vertically, but an even-row-height cell must start
// on a row whose bottom rail matches its designed bottom rail — a mismatch
// cannot be fixed by flipping.
//
// This example places three cells like Figure 1's A (single), B (double,
// VSS bottom), and C (triple) near rows that do NOT match, and shows how
// the legalizer resolves each case.
//
//	go run ./examples/powerrail
package main

import (
	"fmt"
	"log"

	"mclg/internal/core"
	"mclg/internal/design"
)

func main() {
	d := design.NewDesign(design.Config{
		Name:      "figure1",
		NumRows:   6,
		NumSites:  60,
		RowHeight: 10,
		SiteW:     1,
	})
	fmt.Println("rows and rails:")
	for _, r := range d.Rows {
		fmt.Printf("  row %d: y=%2.0f bottom rail %v\n", r.Index, r.Y, r.Rail)
	}

	// A: single-height cell designed for a VSS bottom, dropped near row 1
	// (a VDD row) — fixed by vertical flipping.
	a := d.AddCell("A", 8, 10, design.VSS)
	a.GX, a.GY = 5, 11

	// B: double-height cell with a VSS bottom, dropped near row 1 (VDD).
	// Flipping cannot help; it must move to a VSS row (0 or 2).
	b := d.AddCell("B", 6, 20, design.VSS)
	b.GX, b.GY = 20, 12

	// B2: double-height cell with a VDD bottom, dropped near row 2 (VSS).
	// It must move to a VDD row (1 or 3).
	b2 := d.AddCell("B2", 6, 20, design.VDD)
	b2.GX, b2.GY = 35, 21

	// C: triple-height cell — odd span, any row works with flipping.
	c := d.AddCell("C", 7, 30, design.VDD)
	c.GX, c.GY = 48, 13

	for _, cell := range d.Cells {
		cell.X, cell.Y = cell.GX, cell.GY
	}

	if _, err := core.New(core.Options{}).Legalize(d); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nlegalized:")
	for _, cell := range d.Cells {
		row := d.RowAt(cell.Y + 1)
		fmt.Printf("  %-3s span %d bottom %v -> row %d (rail %v), y=%2.0f, flipped=%v\n",
			cell.Name, cell.RowSpan, cell.BottomRail, row, d.Rows[row].Rail, cell.Y, cell.Flipped)
	}

	rep := design.CheckLegal(d)
	fmt.Printf("\nlegality: %s\n", rep)
	if rep.Count(design.VRailMismatch) != 0 {
		log.Fatal("rail mismatch survived — this should never happen")
	}
}
