// Detailed-placement extension: after legalization, run the MrDP-style
// refinement stage (internal/refine) with both objectives and compare.
// This reproduces the pipeline of the paper's follow-on work (Lin et al.,
// ICCAD 2016), which chains the DAC'16 legalizer with a detailed placer.
//
//	go run ./examples/detailedplace
package main

import (
	"fmt"
	"log"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
	"mclg/internal/refine"
)

func main() {
	e, err := gen.FindEntry("fft_2")
	if err != nil {
		log.Fatal(err)
	}
	base, err := gen.Generate(gen.SuiteSpec(e, 0.02))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s at 2%% scale: %d cells, %d nets\n\n",
		e.Name, len(base.Cells), len(base.Nets))

	for _, tc := range []struct {
		name string
		obj  refine.Objective
	}{
		{"displacement", refine.Displacement},
		{"wirelength (HPWL)", refine.HPWL},
	} {
		d := base.Clone()
		if _, err := core.New(core.Options{}).Legalize(d); err != nil {
			log.Fatal(err)
		}
		dispBefore := metrics.MeasureDisplacement(d).TotalSites
		hpwlBefore := metrics.HPWL(d)

		res, err := refine.Refine(d, refine.Options{Objective: tc.obj})
		if err != nil {
			log.Fatal(err)
		}
		if rep := design.CheckLegal(d); !rep.Legal() {
			log.Fatalf("refinement broke legality: %v", rep)
		}
		dispAfter := metrics.MeasureDisplacement(d).TotalSites
		hpwlAfter := metrics.HPWL(d)

		fmt.Printf("objective: %s\n", tc.name)
		fmt.Printf("  %d slides, %d swaps over %d passes\n", res.Slides, res.Swaps, res.Passes)
		fmt.Printf("  displacement: %8.0f -> %8.0f sites\n", dispBefore, dispAfter)
		fmt.Printf("  HPWL:         %8.0f -> %8.0f\n\n", hpwlBefore, hpwlAfter)
	}
	fmt.Println("note the trade-off: optimizing wirelength moves cells away from")
	fmt.Println("their global-placement positions, and vice versa — which is why the")
	fmt.Println("paper treats legalization (min displacement) and detailed placement")
	fmt.Println("(min wirelength) as separate stages.")
}
