// λ ablation (experiment E7): the penalty λ ties the subcells of each
// multi-row cell together. Small λ leaves subcell mismatch that the
// restoration step has to average away (creating overlaps the Tetris stage
// must repair); large λ ties them tightly but stiffens the system. The
// paper uses λ = 1000.
//
//	go run ./examples/lambdasweep
package main

import (
	"fmt"
	"log"
	"time"

	"mclg/internal/core"
	"mclg/internal/design"
	"mclg/internal/gen"
	"mclg/internal/metrics"
)

func main() {
	e, err := gen.FindEntry("fft_1") // dense: mismatch actually matters
	if err != nil {
		log.Fatal(err)
	}
	base, err := gen.Generate(gen.SuiteSpec(e, 0.02))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("benchmark %s at 2%% scale: %d cells, density %.2f\n\n",
		e.Name, len(base.Cells), base.Density())
	fmt.Printf("%10s %12s %10s %10s %12s %8s\n",
		"lambda", "mismatch", "#illegal", "disp", "iterations", "time")

	for _, lambda := range []float64{1, 10, 100, 1000, 10000} {
		d := base.Clone()
		t0 := time.Now()
		stats, err := core.New(core.Options{Lambda: lambda}).Legalize(d)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)
		disp := metrics.MeasureDisplacement(d)
		legal := design.CheckLegal(d).Legal()
		mark := ""
		if !legal {
			mark = " (ILLEGAL)"
		}
		fmt.Printf("%10g %12.4f %10d %10.0f %12d %8s%s\n",
			lambda, stats.MaxSubcellMismatch, stats.Illegal,
			disp.TotalSites, stats.Iterations, elapsed.Round(time.Millisecond), mark)
	}
	fmt.Println("\nmismatch is the max spread between a multi-row cell's subcell")
	fmt.Println("solutions before restoration; the paper's λ=1000 keeps it far below")
	fmt.Println("one site so the Tetris stage has almost nothing to repair.")
}
