// Section 5.3 replication: on single-row-height designs, the MMSIM solver
// and Abacus's PlaceRow are both optimal once cells are assigned to rows
// and ordered — so they must produce the same total displacement.
//
//	go run ./examples/singlerow
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"mclg/internal/abacus"
	"mclg/internal/core"
	"mclg/internal/gen"
)

func main() {
	spec := gen.Spec{
		Name:        "singlerow-demo",
		SingleCells: 2000,
		Density:     0.6,
		Seed:        42,
	}
	d, err := gen.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.AssignRows(d); err != nil {
		log.Fatal(err)
	}
	mmsim := d.Clone()
	placerow := d.Clone()

	// MMSIM path (relaxed right boundary, like the paper's experiment).
	t0 := time.Now()
	p, err := core.BuildProblem(mmsim, 1000)
	if err != nil {
		log.Fatal(err)
	}
	x, st, err := core.SolveMMSIM(p, core.New(core.Options{Eps: 1e-8}).Opts)
	if err != nil {
		log.Fatal(err)
	}
	core.Restore(p, x)
	tMMSIM := time.Since(t0)

	// Abacus PlaceRow path on the identical row assignment and ordering.
	t1 := time.Now()
	if err := abacus.PlaceRowsAssigned(placerow, true); err != nil {
		log.Fatal(err)
	}
	tPlaceRow := time.Since(t1)

	objM, objP := 0.0, 0.0
	maxDiff := 0.0
	for i := range mmsim.Cells {
		dm := mmsim.Cells[i].X - mmsim.Cells[i].GX
		dp := placerow.Cells[i].X - placerow.Cells[i].GX
		objM += dm * dm
		objP += dp * dp
		if diff := math.Abs(mmsim.Cells[i].X - placerow.Cells[i].X); diff > maxDiff {
			maxDiff = diff
		}
	}

	fmt.Printf("cells: %d, MMSIM iterations: %d (converged %v)\n",
		len(d.Cells), st.Iterations, st.Converged)
	fmt.Printf("Σ(x−x′)²  MMSIM:    %.3f  (%v)\n", objM, tMMSIM)
	fmt.Printf("Σ(x−x′)²  PlaceRow: %.3f  (%v)\n", objP, tPlaceRow)
	fmt.Printf("max per-cell position difference: %.2e\n", maxDiff)
	if rel := math.Abs(objM-objP) / math.Max(1, objP); rel < 1e-6 {
		fmt.Println("=> identical displacement: the MMSIM optimality of Theorem 2 holds")
	} else {
		fmt.Printf("=> objectives differ by %.2e — unexpected\n", math.Abs(objM-objP))
	}
}
