package mclg

// End-to-end tests that build and run the actual command-line binaries.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildCmd compiles one of the cmd/ binaries into a temp dir and returns
// the executable path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestE2EMclgLegalizesBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-v")
	if !strings.Contains(out, "legality: legal") {
		t.Errorf("output missing legality line:\n%s", out)
	}
	if !strings.Contains(out, "converged=true") {
		t.Errorf("MMSIM did not converge:\n%s", out)
	}
	// Every method must produce a legal result on the same input.
	for _, m := range []string{"dac16", "dac16imp", "aspdac17"} {
		out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-method", m)
		if !strings.Contains(out, "legality: legal") {
			t.Errorf("method %s: output missing legality line:\n%s", m, out)
		}
	}
}

func TestE2EMclgResilientCascade(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-resilient", "-v")
	if !strings.Contains(out, `resilient: succeeded on rung "mmsim"`) {
		t.Errorf("cascade did not succeed on the first rung:\n%s", out)
	}
	if !strings.Contains(out, "legality: legal") {
		t.Errorf("output missing legality line:\n%s", out)
	}
}

// TestE2EMclgWorkersMatchSerial checks the CLI end of the determinism
// contract: -workers 4 must print exactly the same quality metrics as
// -workers 1 (the per-package tests pin the stronger bit-identical claim).
func TestE2EMclgWorkersMatchSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	metricLines := func(out string) string {
		var keep []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "total displacement:") ||
				strings.HasPrefix(line, "HPWL:") ||
				strings.HasPrefix(line, "legality:") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	serial := metricLines(run(t, bin, "-bench", "des_perf_1", "-scale", "0.004", "-workers", "1"))
	if !strings.Contains(serial, "legality: legal") {
		t.Fatalf("serial run not legal:\n%s", serial)
	}
	parallel := metricLines(run(t, bin, "-bench", "des_perf_1", "-scale", "0.004", "-workers", "4"))
	if parallel != serial {
		t.Errorf("-workers 4 metrics diverged from -workers 1:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

// TestE2EMclgWindowed smokes the -windows flag: the supervised windowed run
// must come out legal, print the supervision summary, and carry the window
// stats in the -json report.
func TestE2EMclgWindowed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-windows", "-window-rows", "4")
	if !strings.Contains(out, "legality: legal") {
		t.Errorf("windowed run not legal:\n%s", out)
	}
	if !strings.Contains(out, "windows: ") {
		t.Errorf("output missing window supervision summary:\n%s", out)
	}
	jsonOut := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-windows", "-window-rows", "4", "-json")
	if !strings.Contains(jsonOut, `"windows"`) || !strings.Contains(jsonOut, `"solved"`) {
		t.Errorf("-json report missing window stats:\n%s", jsonOut)
	}
	// Flag hygiene: windowed knobs without -windows are refused.
	if _, err := exec.Command(bin, "-bench", "fft_2", "-hedge", "0.5").CombinedOutput(); err == nil {
		t.Error("-hedge without -windows should be refused")
	}
}

// slowArgs is a CLI invocation that legalizes for ~10s when left alone —
// long enough that a timeout or signal reliably lands mid-solve.
var slowArgs = []string{"-bench", "superblue19", "-scale", "0.02", "-eps", "1e-9"}

func TestE2EMclgTimeoutAborts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	cmd := exec.Command(bin, append([]string{"-timeout", "300ms"}, slowArgs...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected the run to abort, got success:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit code 2, got %v:\n%s", err, out)
	}
	if !strings.Contains(string(out), "canceled") {
		t.Errorf("abort message missing 'canceled':\n%s", out)
	}
}

func TestE2EMclgSigintAbortsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	cmd := exec.Command(bin, slowArgs...)
	var buf bytes.Buffer
	cmd.Stdout, cmd.Stderr = &buf, &buf
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(1 * time.Second)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	out := buf.String()
	if err == nil {
		t.Fatalf("expected SIGINT to abort the run, got success:\n%s", out)
	}
	// A clean abort exits through the error path (code 2), not signal death.
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("expected exit code 2 after SIGINT, got %v:\n%s", err, out)
	}
	if !strings.Contains(out, "canceled") {
		t.Errorf("abort message missing 'canceled':\n%s", out)
	}
}

func TestE2EBenchgenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	benchgen := buildCmd(t, "benchgen")
	mclg := buildCmd(t, "mclg")
	dir := t.TempDir()
	out := run(t, benchgen, "-out", dir, "-bench", "pci_bridge32_b", "-scale", "0.01")
	if !strings.Contains(out, "pci_bridge32_b") {
		t.Fatalf("benchgen output:\n%s", out)
	}
	aux := filepath.Join(dir, "pci_bridge32_b", "pci_bridge32_b.aux")
	if _, err := os.Stat(aux); err != nil {
		t.Fatal(err)
	}
	// Legalize the written Bookshelf files and export the result.
	outAux := filepath.Join(dir, "legal.aux")
	out = run(t, mclg, "-aux", aux, "-out", outAux)
	if !strings.Contains(out, "legality: legal") {
		t.Errorf("legalizing bookshelf failed:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "legal.pl")); err != nil {
		t.Error("legalized .pl not written")
	}
}

func TestE2ERenderLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "renderlayout")
	svg := filepath.Join(t.TempDir(), "out.svg")
	out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-legalize", "-out", svg)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("renderlayout output:\n%s", out)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output is not an SVG")
	}
}

func TestE2EExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "experiments")
	out := run(t, bin, "-single", "-scale", "0.004", "-bench", "fft_2")
	if !strings.Contains(out, "runtime ratio") {
		t.Errorf("experiments output:\n%s", out)
	}
}
