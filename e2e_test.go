package mclg

// End-to-end tests that build and run the actual command-line binaries.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one of the cmd/ binaries into a temp dir and returns
// the executable path.
func buildCmd(t *testing.T, name string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestE2EMclgLegalizesBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "mclg")
	out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-v")
	if !strings.Contains(out, "legality: legal") {
		t.Errorf("output missing legality line:\n%s", out)
	}
	if !strings.Contains(out, "converged=true") {
		t.Errorf("MMSIM did not converge:\n%s", out)
	}
	// Every method must produce a legal result on the same input.
	for _, m := range []string{"dac16", "dac16imp", "aspdac17"} {
		out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-method", m)
		if !strings.Contains(out, "legality: legal") {
			t.Errorf("method %s: output missing legality line:\n%s", m, out)
		}
	}
}

func TestE2EBenchgenRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	benchgen := buildCmd(t, "benchgen")
	mclg := buildCmd(t, "mclg")
	dir := t.TempDir()
	out := run(t, benchgen, "-out", dir, "-bench", "pci_bridge32_b", "-scale", "0.01")
	if !strings.Contains(out, "pci_bridge32_b") {
		t.Fatalf("benchgen output:\n%s", out)
	}
	aux := filepath.Join(dir, "pci_bridge32_b", "pci_bridge32_b.aux")
	if _, err := os.Stat(aux); err != nil {
		t.Fatal(err)
	}
	// Legalize the written Bookshelf files and export the result.
	outAux := filepath.Join(dir, "legal.aux")
	out = run(t, mclg, "-aux", aux, "-out", outAux)
	if !strings.Contains(out, "legality: legal") {
		t.Errorf("legalizing bookshelf failed:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "legal.pl")); err != nil {
		t.Error("legalized .pl not written")
	}
}

func TestE2ERenderLayout(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "renderlayout")
	svg := filepath.Join(t.TempDir(), "out.svg")
	out := run(t, bin, "-bench", "fft_2", "-scale", "0.004", "-legalize", "-out", svg)
	if !strings.Contains(out, "wrote") {
		t.Fatalf("renderlayout output:\n%s", out)
	}
	data, err := os.ReadFile(svg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Error("output is not an SVG")
	}
}

func TestE2EExperimentsSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin := buildCmd(t, "experiments")
	out := run(t, bin, "-single", "-scale", "0.004", "-bench", "fft_2")
	if !strings.Contains(out, "runtime ratio") {
		t.Errorf("experiments output:\n%s", out)
	}
}
