module mclg

go 1.22
