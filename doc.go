// Package mclg reproduces "Toward Optimal Legalization for Mixed-Cell-Height
// Circuit Designs" (Chen, Zhu, Zhu, Chang — DAC 2017): a mixed-cell-height
// standard-cell legalizer that converts the fixed-ordering relaxation of the
// legalization problem into a linear complementarity problem and solves it
// with a modulus-based matrix splitting iteration method (MMSIM), followed
// by a Tetris-like allocation that snaps cells to placement sites.
//
// The public surface lives in the internal packages (this repository is a
// self-contained reproduction, not a library for import); the binaries under
// cmd/ and the programs under examples/ are the intended entry points:
//
//	cmd/mclg          legalize a Bookshelf design or a synthetic benchmark
//	cmd/benchgen      materialize the synthetic suite as Bookshelf files
//	cmd/experiments   regenerate the paper's Table 1 / Table 2 / §5.3
//	cmd/renderlayout  draw a placement as SVG (Figure 5 style)
//
// The benchmarks in bench_test.go regenerate every table and figure of the
// paper's evaluation section; see EXPERIMENTS.md for measured-vs-paper
// numbers.
package mclg
